"""The storage client: uniform read/write over heterogeneous backends.

"This storage can be accessed by a client that hides from the user how
and where data is stored on the backends" (paper Section 5.1).  Reads
consult the namenode, pick the closest replica (by ping distance) and
fetch it with backend-specific logic; co-located data takes the fast
path past the namenode.  Writes go to local storage first, with
replication handed off to the background (the paper's optimized write).

All data movement is simulated: operations schedule flows on the shared
:class:`~repro.sim.network.FluidNetwork` plus the backend's per-chunk
protocol overhead, and complete via callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sim import FluidNetwork, Simulation
from .backends import StorageBackend, StorageError
from .blocks import Block, BlockId, LocationRecord
from .namenode import Namenode


@dataclass
class TransferStats:
    """Aggregate I/O counters (feed the accounting layer and Fig. 15)."""

    reads: int = 0
    writes: int = 0
    read_mb: float = 0.0
    written_mb: float = 0.0
    local_fast_path_hits: int = 0


class StorageClient:
    """Read/write blocks through the resource abstraction layer."""

    def __init__(
        self,
        sim: Simulation,
        network: FluidNetwork,
        namenode: Namenode,
        backends: dict[str, StorageBackend],
        ping: Callable[[str, str], float] | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.backends = dict(backends)
        self._ping = ping or self._default_ping
        self.stats = TransferStats()

    # -- reads -------------------------------------------------------------

    def read(
        self,
        block_id: BlockId,
        at_site: str,
        on_complete: Callable[[Block], None],
    ) -> None:
        """Fetch a block to ``at_site``; ``on_complete(block)`` fires when
        the last byte arrives.

        Co-located replicas short-circuit the namenode: the local daemon
        is tried directly and only a miss falls back to the normal path
        (with the fetched copy then cached locally), per Section 5.1.
        """
        block = self.namenode.block(block_id)
        local = self._local_record(block_id, at_site)
        if local is not None:
            self.stats.local_fast_path_hits += 1
            self.stats.reads += 1
            self.stats.read_mb += block.size_mb
            # Local disk read: modeled through the node's disk link when
            # the topology defines a self-route, otherwise instantaneous.
            self.sim.schedule(0.0, on_complete, block)
            return

        records = self.namenode.locations(block_id)
        if not records:
            raise StorageError(f"no replica of {block_id} available")
        best = min(records, key=lambda r: self._ping(at_site, r.site))
        backend = self.backends[best.backend]

        def deliver(_flow) -> None:
            self.stats.reads += 1
            self.stats.read_mb += block.size_mb
            # Install a cached copy locally so future reads are local
            # (the paper's fallback path caches on miss).
            self._cache_locally(block, at_site)
            on_complete(block)

        self.sim.schedule(
            backend.per_chunk_overhead_s,
            lambda: self.network.start_flow(best.site, at_site, block.size_mb, deliver),
        )

    # -- writes -------------------------------------------------------------

    def write(
        self,
        block: Block,
        at_site: str,
        target: LocationRecord,
        on_complete: Callable[[Block], None] | None = None,
    ) -> None:
        """Write one replica of ``block`` from ``at_site`` to ``target``."""
        if not self.namenode.exists(block.block_id):
            self.namenode.register(block)
        backend = self.backends[target.backend]

        def deliver(_flow=None) -> None:
            backend.put(target.node, block)
            self.namenode.add_location(block.block_id, target)
            self.stats.writes += 1
            self.stats.written_mb += block.size_mb
            if on_complete is not None:
                on_complete(block)

        self.sim.schedule(
            backend.per_chunk_overhead_s,
            lambda: self.network.start_flow(at_site, target.site, block.size_mb, deliver),
        )

    def write_local_then_replicate(
        self,
        block: Block,
        at_site: str,
        local_target: LocationRecord,
        replica_targets: list[LocationRecord],
        on_local_complete: Callable[[Block], None] | None = None,
    ) -> None:
        """The paper's optimized write: commit locally, replicate behind.

        ``on_local_complete`` fires as soon as the local replica is
        durable (the writer may proceed); background replication flows
        continue independently and register their locations as they land.
        """

        def local_done(written: Block) -> None:
            if on_local_complete is not None:
                on_local_complete(written)
            for target in replica_targets:
                self.write(written, local_target.site, target)

        self.write(block, at_site, local_target, local_done)

    # -- internals ----------------------------------------------------------

    def _local_record(self, block_id: BlockId, site: str) -> LocationRecord | None:
        for record in self.namenode.locations(block_id):
            if record.site == site and self.backends[record.backend].contains(
                record.node, block_id
            ):
                return record
        return None

    def _cache_locally(self, block: Block, site: str) -> None:
        for name, backend in self.backends.items():
            if hasattr(backend, "nodes") and site in getattr(backend, "nodes"):
                backend.put(site, block)
                self.namenode.add_location(
                    block.block_id, LocationRecord(backend=name, node=site)
                )
                return

    @staticmethod
    def _default_ping(a: str, b: str) -> float:
        """Trivial distance: co-located 0, everything else 1."""
        return 0.0 if a == b else 1.0
