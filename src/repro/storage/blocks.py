"""Block and location records for the storage abstraction layer.

Conductor's storage system is a distributed key-value store fronted by a
*namenode* that maps file-block identifiers to location records; each
record carries backend-specific addressing (paper Section 5.1).  Blocks
here carry sizes, not payloads — the simulator moves volumes, and tests
that need real bytes attach a payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BlockId:
    """Identifier of one stored chunk: ``(file, index)``."""

    file: str
    index: int

    def __str__(self) -> str:
        return f"{self.file}#{self.index}"


@dataclass
class Block:
    """A chunk of data known to the namenode."""

    block_id: BlockId
    size_mb: float
    payload: bytes | None = None

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError("block size must be non-negative")


@dataclass(frozen=True)
class LocationRecord:
    """Where one replica of a block lives.

    ``backend`` names the storage backend ("local-disk", "s3", ...);
    ``node`` addresses the specific daemon for node-local backends and is
    empty for flat object stores like S3 (paper: "location records contain
    information specific to the storage backend").
    """

    backend: str
    node: str = ""

    @property
    def site(self) -> str:
        """Network site used for routing reads/writes to this replica."""
        return self.node if self.node else self.backend
