"""Chunked file system driver on top of the key-value store.

The Hadoop integration splits files "into smaller chunks that are stored
as key-value pairs ... for each file we store inodes that list the chunks
that constitute the file content" (paper Section 5.3).  This module is
that driver: path-level create/write/read plus the locality queries the
location-aware scheduler needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from .blocks import Block, BlockId, LocationRecord
from .client import StorageClient
from .namenode import Namenode

DEFAULT_CHUNK_MB = 64.0


@dataclass
class Inode:
    """Per-file metadata: ordered chunk list."""

    path: str
    size_mb: float
    chunks: list[BlockId] = field(default_factory=list)


class FileSystemError(KeyError):
    pass


class ConductorFileSystem:
    """File abstraction over Conductor's storage system."""

    def __init__(
        self,
        namenode: Namenode,
        client: StorageClient,
        chunk_mb: float = DEFAULT_CHUNK_MB,
    ) -> None:
        if chunk_mb <= 0:
            raise ValueError("chunk_mb must be positive")
        self.namenode = namenode
        self.client = client
        self.chunk_mb = chunk_mb
        self._inodes: dict[str, Inode] = {}

    # -- namespace ------------------------------------------------------------

    def create(self, path: str, size_mb: float) -> Inode:
        """Register a file and its chunk layout (no data written yet)."""
        if path in self._inodes:
            raise FileSystemError(f"file exists: {path}")
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        inode = Inode(path=path, size_mb=size_mb)
        count = max(1, math.ceil(size_mb / self.chunk_mb - 1e-9)) if size_mb else 0
        remaining = size_mb
        for index in range(count):
            block_id = BlockId(path, index)
            chunk_size = min(self.chunk_mb, remaining)
            remaining -= chunk_size
            self.namenode.register(Block(block_id, chunk_size))
            inode.chunks.append(block_id)
        self._inodes[path] = inode
        return inode

    def inode(self, path: str) -> Inode:
        try:
            return self._inodes[path]
        except KeyError:
            raise FileSystemError(f"no such file: {path}") from None

    def exists(self, path: str) -> bool:
        return path in self._inodes

    def files(self) -> list[str]:
        return list(self._inodes)

    def delete(self, path: str) -> None:
        inode = self.inode(path)
        for block_id in inode.chunks:
            for record in self.namenode.locations(block_id):
                self.client.backends[record.backend].delete(record.node, block_id)
                self.namenode.remove_location(block_id, record)
        del self._inodes[path]

    # -- data movement -----------------------------------------------------------

    def upload(
        self,
        path: str,
        from_site: str,
        target_for_chunk: Callable[[int], LocationRecord],
        on_complete: Callable[[], None] | None = None,
        on_chunk: Callable[[BlockId], None] | None = None,
    ) -> None:
        """Stream a file's chunks from a source site into the store.

        ``target_for_chunk(i)`` decides each chunk's destination — this is
        how the controller's plan drives placement ("where and when to
        upload and store what data", Section 5.2).
        """
        inode = self.inode(path)
        pending = len(inode.chunks)
        if pending == 0 and on_complete is not None:
            self.client.sim.schedule(0.0, on_complete)
            return

        def chunk_done(block: Block) -> None:
            nonlocal pending
            pending -= 1
            if on_chunk is not None:
                on_chunk(block.block_id)
            if pending == 0 and on_complete is not None:
                on_complete()

        for index, block_id in enumerate(inode.chunks):
            block = self.namenode.block(block_id)
            self.client.write(block, from_site, target_for_chunk(index), chunk_done)

    def read_file(
        self,
        path: str,
        at_site: str,
        on_complete: Callable[[], None] | None = None,
    ) -> None:
        """Fetch all chunks of a file to one site."""
        inode = self.inode(path)
        pending = len(inode.chunks)
        if pending == 0 and on_complete is not None:
            self.client.sim.schedule(0.0, on_complete)
            return

        def chunk_done(_block: Block) -> None:
            nonlocal pending
            pending -= 1
            if pending == 0 and on_complete is not None:
                on_complete()

        for block_id in inode.chunks:
            self.client.read(block_id, at_site, chunk_done)

    # -- locality (for the scheduler) ----------------------------------------------

    def chunk_locations(self, path: str) -> dict[BlockId, list[LocationRecord]]:
        """Replica map for every chunk — the scheduler's locality input
        ("methods for the scheduler to retrieve the location of a task's
        input data", Section 5.3)."""
        return {
            block_id: self.namenode.locations(block_id)
            for block_id in self.inode(path).chunks
        }

    def prioritize(self, path: str, priority: int) -> None:
        """Hint the namenode to move this file's chunks first."""
        for block_id in self.inode(path).chunks:
            self.namenode.set_priority(block_id, priority)
