"""Conductor's storage abstraction layer (paper Section 5.1).

A distributed key-value store with a namenode directory, pluggable
backends (node-local disk daemons, an S3-like object store), a client
with closest-replica reads and local-write-then-replicate semantics, a
chunked filesystem driver for Hadoop-style access, and a replication /
migration manager that enacts the execution plan.
"""

from .backends import LocalDiskBackend, ObjectStoreBackend, StorageBackend, StorageError
from .blocks import Block, BlockId, LocationRecord
from .client import StorageClient, TransferStats
from .failures import FailureEvent, FailureInjector, unavailable_files
from .filesystem import DEFAULT_CHUNK_MB, ConductorFileSystem, FileSystemError, Inode
from .namenode import Namenode
from .replication import ReplicationManager

__all__ = [
    "Block",
    "BlockId",
    "ConductorFileSystem",
    "DEFAULT_CHUNK_MB",
    "FailureEvent",
    "FailureInjector",
    "FileSystemError",
    "Inode",
    "LocalDiskBackend",
    "LocationRecord",
    "Namenode",
    "ObjectStoreBackend",
    "ReplicationManager",
    "StorageBackend",
    "StorageClient",
    "StorageError",
    "TransferStats",
    "unavailable_files",
]
