"""Storage backends: node-local disk daemons and an S3-like object store.

Each backend maps the key-value semantics of Conductor's storage system
onto one concrete service (paper Section 5.1): the local-disk backend
runs a daemon per participating node (the paper used Berkeley DB; ours is
an in-memory table with the same put/get/delete protocol), while the S3
backend models a flat object store addressed through client APIs.

Backends account *placement* (which keys live where, how many MB); the
time data movement takes is the network model's concern, and per-request
protocol overheads are exposed as parameters the client adds to each
chunk operation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from .blocks import Block, BlockId


class StorageError(KeyError):
    """A block/replica was not where the metadata said it would be."""


class StorageBackend(abc.ABC):
    """Common behaviour of all storage backends."""

    def __init__(self, name: str, per_chunk_overhead_s: float = 0.0) -> None:
        self.name = name
        #: Fixed protocol latency added per chunk operation (namenode RTT,
        #: HTTP round-trip, SSL handshake...).  This single parameter is
        #: what separates HDFS from Conductor's layer in Fig. 15.
        self.per_chunk_overhead_s = per_chunk_overhead_s
        #: Observers notified *before* any occupancy change (used by
        #: billing gauges to integrate GB-hours exactly).
        self.observers: list = []

    def _notify(self) -> None:
        for observer in self.observers:
            observer()

    @abc.abstractmethod
    def put(self, node: str, block: Block) -> None:
        """Store a replica of ``block`` at ``node`` (ignored for flat stores)."""

    @abc.abstractmethod
    def get(self, node: str, block_id: BlockId) -> Block:
        """Fetch a replica; raises :class:`StorageError` when absent."""

    @abc.abstractmethod
    def delete(self, node: str, block_id: BlockId) -> None:
        """Drop a replica if present (idempotent)."""

    @abc.abstractmethod
    def contains(self, node: str, block_id: BlockId) -> bool: ...

    @abc.abstractmethod
    def stored_mb(self, node: str | None = None) -> float:
        """MB held (at one node, or in total)."""


class LocalDiskBackend(StorageBackend):
    """Per-node storage daemons (the paper's Berkeley DB daemons).

    Data is partitioned by node: a ``get`` must address a node that
    actually holds the replica, exactly like talking to that node's
    daemon over its put/get/delete protocol.
    """

    def __init__(self, name: str = "local-disk", per_chunk_overhead_s: float = 0.0) -> None:
        super().__init__(name, per_chunk_overhead_s)
        self._tables: dict[str, dict[BlockId, Block]] = {}

    def add_node(self, node: str) -> None:
        self._tables.setdefault(node, {})

    def remove_node(self, node: str) -> list[BlockId]:
        """Take a node (and its replicas) away; returns what was lost.

        Models instance termination — the failure path that makes cheap,
        less-reliable storage risky for intermediate data (Section 2.1).
        """
        self._notify()
        table = self._tables.pop(node, {})
        return list(table.keys())

    @property
    def nodes(self) -> list[str]:
        return list(self._tables)

    def put(self, node: str, block: Block) -> None:
        if node not in self._tables:
            raise StorageError(f"no storage daemon on node {node!r}")
        self._notify()
        self._tables[node][block.block_id] = block

    def get(self, node: str, block_id: BlockId) -> Block:
        try:
            return self._tables[node][block_id]
        except KeyError:
            raise StorageError(f"{block_id} not on node {node!r}") from None

    def delete(self, node: str, block_id: BlockId) -> None:
        self._notify()
        self._tables.get(node, {}).pop(block_id, None)

    def contains(self, node: str, block_id: BlockId) -> bool:
        return block_id in self._tables.get(node, {})

    def stored_mb(self, node: str | None = None) -> float:
        if node is not None:
            return sum(b.size_mb for b in self._tables.get(node, {}).values())
        return sum(
            b.size_mb for table in self._tables.values() for b in table.values()
        )


class ObjectStoreBackend(StorageBackend):
    """A flat, unlimited object store with S3 semantics.

    The ``node`` argument of put/get is ignored — all clients see one
    namespace, reachable at the backend's network site.
    """

    def __init__(
        self,
        name: str = "s3",
        per_chunk_overhead_s: float = 0.2,
    ) -> None:
        super().__init__(name, per_chunk_overhead_s)
        self._objects: dict[BlockId, Block] = {}

    def put(self, node: str, block: Block) -> None:
        self._notify()
        self._objects[block.block_id] = block

    def get(self, node: str, block_id: BlockId) -> Block:
        try:
            return self._objects[block_id]
        except KeyError:
            raise StorageError(f"{block_id} not in object store {self.name!r}") from None

    def delete(self, node: str, block_id: BlockId) -> None:
        self._notify()
        self._objects.pop(block_id, None)

    def contains(self, node: str, block_id: BlockId) -> bool:
        return block_id in self._objects

    def stored_mb(self, node: str | None = None) -> float:
        return sum(b.size_mb for b in self._objects.values())
