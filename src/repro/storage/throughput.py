"""Storage-layer throughput experiment (paper Section 6.6, Fig. 15).

The paper copies 32 GB of 64 MB files from an EBS volume on a large EC2
instance into four storage configurations and measures throughput:

- **HDFS** (replication 3): fastest, ~21 MB/s — years of optimization;
- **Conductor's storage** (replication 3): ~25% slower — the namenode
  round-trip and key-value protocol cost per chunk;
- **S3 via s3cmd**: comparable to Conductor (~15 MB/s);
- **S3 via Hadoop**: far slower (~7 MB/s) — the 2011 Hadoop S3 client
  forced SSL transfer.

The simulation reproduces the mechanism, not magic numbers: the EBS
source read rate, per-connection S3 limits (plain vs SSL) and per-chunk
protocol overheads are the measured 2011 characteristics; throughput
emerges from the fluid network.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapreduce.hdfs import (
    CONDUCTOR_CHUNK_OVERHEAD_S,
    HDFS_CHUNK_OVERHEAD_S,
    build_hdfs,
)
from ..sim import FluidNetwork, Simulation, Topology
from ..units import MB_PER_GB
from .backends import LocalDiskBackend, ObjectStoreBackend
from .blocks import LocationRecord
from .client import StorageClient
from .filesystem import ConductorFileSystem
from .namenode import Namenode
from .replication import ReplicationManager

#: 2011-era component characteristics (MB/s).
EBS_READ_MB_S = 25.0
NODE_NIC_MB_S = 50.0
NODE_DISK_MB_S = 60.0
S3_PLAIN_CONNECTION_MB_S = 16.0
S3_SSL_CONNECTION_MB_S = 7.0
S3_HADOOP_CHUNK_OVERHEAD_S = 0.6  # HTTPS handshake per object
S3CMD_CHUNK_OVERHEAD_S = 0.25


@dataclass
class ThroughputResult:
    """One bar of Fig. 15."""

    option: str
    copied_gb: float
    elapsed_s: float

    @property
    def throughput_mb_s(self) -> float:
        if self.elapsed_s <= 0:
            return float("inf")
        return self.copied_gb * MB_PER_GB / self.elapsed_s


def _base_topology(num_nodes: int) -> Topology:
    """Source node with an EBS volume, N datanodes, an S3 gateway."""
    topo = Topology()
    topo.add_link("ebs", EBS_READ_MB_S)
    topo.add_link("s3-plain", S3_PLAIN_CONNECTION_MB_S)
    topo.add_link("s3-ssl", S3_SSL_CONNECTION_MB_S)
    for i in range(num_nodes):
        topo.add_link(f"nic-{i}", NODE_NIC_MB_S)
        topo.add_link(f"disk-{i}", NODE_DISK_MB_S)
    for i in range(num_nodes):
        topo.add_route("source", f"node-{i}", ["ebs", f"nic-{i}", f"disk-{i}"], symmetric=False)
        topo.add_route(f"node-{i}", "source", [f"nic-{i}"], symmetric=False)
        for j in range(num_nodes):
            if i != j:
                topo.add_route(
                    f"node-{i}", f"node-{j}",
                    [f"nic-{i}", f"nic-{j}", f"disk-{j}"], symmetric=False,
                )
    topo.add_route("source", "s3", ["ebs", "s3-plain"], symmetric=False)
    topo.add_route("source", "s3-ssl-endpoint", ["ebs", "s3-ssl"], symmetric=False)
    return topo


def measure_hdfs(total_gb: float = 32.0, chunk_mb: float = 64.0, nodes: int = 4) -> ThroughputResult:
    """Copy into HDFS with pipeline replication 3."""
    sim = Simulation()
    topo = _base_topology(nodes)
    network = FluidNetwork(sim, topo)
    hdfs = build_hdfs(
        sim, network, [f"node-{i}" for i in range(nodes)],
        replication=3, chunk_mb=chunk_mb,
    )
    done = []
    hdfs.write_file(
        "/bench/data", total_gb * MB_PER_GB, "source", chunk_mb=chunk_mb,
        on_complete=lambda: done.append(sim.now),
    )
    sim.run_until_idle()
    return ThroughputResult("HDFS", total_gb, done[0])


def measure_conductor(total_gb: float = 32.0, chunk_mb: float = 64.0, nodes: int = 4) -> ThroughputResult:
    """Copy into Conductor's storage: local-write + background replication
    to factor 3, with the namenode round-trip per chunk."""
    sim = Simulation()
    topo = _base_topology(nodes)
    network = FluidNetwork(sim, topo)
    namenode = Namenode()
    backend = LocalDiskBackend(
        "local-disk", per_chunk_overhead_s=CONDUCTOR_CHUNK_OVERHEAD_S
    )
    for i in range(nodes):
        backend.add_node(f"node-{i}")
    client = StorageClient(sim, network, namenode, {"local-disk": backend})
    fs = ConductorFileSystem(namenode, client, chunk_mb=chunk_mb)
    manager = ReplicationManager(namenode, client, replication_factor=3)
    inode = fs.create("/bench/data", total_gb * MB_PER_GB)

    done = []
    queue = list(enumerate(inode.chunks))

    # Sequential copy, like the HDFS baseline: the writer acks each chunk
    # before sending the next; replication continues in the background.
    def write_next(_block=None) -> None:
        if not queue:
            done.append(sim.now)
            return
        index, block_id = queue.pop(0)
        block = namenode.block(block_id)
        primary = LocationRecord("local-disk", f"node-{index % nodes}")
        replicas = [
            LocationRecord("local-disk", f"node-{(index + k) % nodes}")
            for k in (1, 2)
        ]
        client.write_local_then_replicate(
            block, "source", primary, replicas, on_local_complete=write_next
        )

    write_next()
    sim.run_until_idle()
    # Throughput is measured at write-acknowledgement (all primaries in);
    # replication finishes in the background, but the copy command has
    # returned — the same thing `time` measures for the real system.
    return ThroughputResult("Conductor", total_gb, done[0])


def measure_s3(
    total_gb: float = 32.0,
    chunk_mb: float = 64.0,
    via_ssl: bool = False,
    label: str | None = None,
) -> ThroughputResult:
    """Copy to S3 over one connection: plain (s3cmd) or SSL (Hadoop)."""
    sim = Simulation()
    topo = _base_topology(1)
    network = FluidNetwork(sim, topo)
    namenode = Namenode()
    overhead = S3_HADOOP_CHUNK_OVERHEAD_S if via_ssl else S3CMD_CHUNK_OVERHEAD_S
    backend = ObjectStoreBackend(
        "s3-ssl-endpoint" if via_ssl else "s3", per_chunk_overhead_s=overhead
    )
    client = StorageClient(sim, network, namenode, {backend.name: backend})
    fs = ConductorFileSystem(namenode, client, chunk_mb=chunk_mb)
    inode = fs.create("/bench/data", total_gb * MB_PER_GB)
    done = []
    # s3 uploads are sequential per connection: chain the chunk writes.
    chunks = list(inode.chunks)

    def write_next() -> None:
        if not chunks:
            done.append(sim.now)
            return
        block = namenode.block(chunks.pop(0))
        client.write(
            block, "source", LocationRecord(backend.name), lambda _b: write_next()
        )

    write_next()
    sim.run_until_idle()
    name = label or ("S3 (Hadoop)" if via_ssl else "S3 (s3cmd)")
    return ThroughputResult(name, total_gb, done[0])


def run_storage_throughput_experiment(
    total_gb: float = 32.0, chunk_mb: float = 64.0
) -> list[ThroughputResult]:
    """All four Fig. 15 bars, in the paper's order."""
    return [
        measure_conductor(total_gb, chunk_mb),
        measure_hdfs(total_gb, chunk_mb),
        measure_s3(total_gb, chunk_mb, via_ssl=True),
        measure_s3(total_gb, chunk_mb, via_ssl=False),
    ]
