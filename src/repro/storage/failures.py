"""Failure injection for the storage abstraction layer.

Drives the fault scenarios of paper Section 2.1 against the simulated
storage system: individual block loss (an unreliable backend dropping
an object) and whole-node crashes (every replica on the node vanishes
at once).  Deterministic under a seed, so tests can assert exact
recovery behaviour.

Two usage modes:

- imperative: ``injector.lose_block(...)`` / ``injector.fail_node(...)``
  from a test or scenario script;
- scheduled: ``injector.schedule_node_failure(sim, at_hour, ...)`` hooks
  the event into a :class:`repro.sim.Simulation`, and
  ``injector.arm_random_losses(...)`` samples a Poisson-thinned loss
  process over the registered blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..sim.clock import Simulation
from .blocks import BlockId
from .namenode import Namenode


@dataclass(frozen=True)
class FailureEvent:
    """A record of one injected failure (for assertions and reports)."""

    hour: float
    kind: str  # "block-loss" | "node-crash"
    detail: str
    blocks_lost: tuple[BlockId, ...]


class FailureInjector:
    """Injects storage failures into a namenode-backed deployment."""

    def __init__(self, namenode: Namenode) -> None:
        self._namenode = namenode
        self._log: list[FailureEvent] = []
        self._listeners: list[Callable[[FailureEvent], None]] = []

    @property
    def log(self) -> list[FailureEvent]:
        return list(self._log)

    def on_failure(self, listener: Callable[[FailureEvent], None]) -> None:
        """Register a callback fired after every injected failure."""
        self._listeners.append(listener)

    # -- imperative injection -------------------------------------------------

    def lose_block(self, block_id: BlockId, hour: float = 0.0) -> FailureEvent:
        """Drop *every* replica of one block (the object is gone)."""
        for record in self._namenode.locations(block_id):
            self._namenode.remove_location(block_id, record)
        return self._record(hour, "block-loss", str(block_id), (block_id,))

    def lose_replica(
        self, block_id: BlockId, backend: str, node: str = "", hour: float = 0.0
    ) -> FailureEvent:
        """Drop one replica; the block survives if others remain."""
        from .blocks import LocationRecord

        self._namenode.remove_location(
            block_id, LocationRecord(backend=backend, node=node)
        )
        lost = (block_id,) if not self._namenode.locations(block_id) else ()
        return self._record(
            hour, "block-loss", f"{block_id}@{backend}/{node or '-'}", lost
        )

    def fail_node(
        self, backend: str, node: str, hour: float = 0.0
    ) -> FailureEvent:
        """Crash a storage node: every replica it held disappears."""
        touched = self._namenode.drop_node(backend, node)
        lost = tuple(
            block_id
            for block_id in touched
            if not self._namenode.locations(block_id)
        )
        return self._record(hour, "node-crash", f"{backend}/{node}", lost)

    # -- scheduled / random injection --------------------------------------------

    def schedule_node_failure(
        self, sim: Simulation, at_hour: float, backend: str, node: str
    ) -> None:
        sim.schedule_at(
            at_hour, lambda: self.fail_node(backend, node, hour=sim.now)
        )

    def schedule_block_loss(
        self, sim: Simulation, at_hour: float, block_id: BlockId
    ) -> None:
        sim.schedule_at(
            at_hour, lambda: self.lose_block(block_id, hour=sim.now)
        )

    def arm_random_losses(
        self,
        sim: Simulation,
        loss_per_block_hour: float,
        horizon_hours: float,
        rng: np.random.Generator | int | None = None,
        backend: str | None = None,
    ) -> int:
        """Sample block-loss times over the horizon; returns count armed.

        Each currently-registered block independently draws an
        exponential time-to-loss with the given hourly rate; draws
        beyond the horizon mean the block survives.  ``backend``
        restricts losses to blocks with a replica there.
        """
        if loss_per_block_hour < 0:
            raise ValueError("loss rate must be non-negative")
        if loss_per_block_hour == 0:
            return 0
        generator = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        armed = 0
        for block_id in self._namenode.blocks():
            if backend is not None and not any(
                record.backend == backend
                for record in self._namenode.locations(block_id)
            ):
                continue
            delay = float(generator.exponential(1.0 / loss_per_block_hour))
            if delay <= horizon_hours:
                self.schedule_block_loss(sim, sim.now + delay, block_id)
                armed += 1
        return armed

    # -- internals ------------------------------------------------------------------

    def _record(
        self,
        hour: float,
        kind: str,
        detail: str,
        blocks_lost: tuple[BlockId, ...],
    ) -> FailureEvent:
        event = FailureEvent(
            hour=hour, kind=kind, detail=detail, blocks_lost=blocks_lost
        )
        self._log.append(event)
        for listener in self._listeners:
            listener(event)
        return event


def unavailable_files(namenode: Namenode) -> set[str]:
    """Files with at least one unavailable block (cannot be re-read)."""
    return {block_id.file for block_id in namenode.unavailable()}
