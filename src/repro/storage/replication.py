"""Replication and migration management.

The namenode "manages upload, replication and migration of the data as
per the execution plan" (paper Section 5.1).  This module implements the
acting half: keeping blocks at their replication factor (we "replicate
blocks in more than one node for fault tolerance and performance") and
moving data between backends when the plan says so (Section 4.5).
"""

from __future__ import annotations

from typing import Callable

from .backends import LocalDiskBackend
from .blocks import Block, BlockId, LocationRecord
from .client import StorageClient
from .namenode import Namenode


class ReplicationManager:
    """Maintains replica counts and executes plan-driven migrations."""

    def __init__(
        self,
        namenode: Namenode,
        client: StorageClient,
        replication_factor: int = 3,
    ) -> None:
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.namenode = namenode
        self.client = client
        self.replication_factor = replication_factor

    # -- placement policy -------------------------------------------------------

    def choose_targets(
        self, block_id: BlockId, count: int, backend_name: str
    ) -> list[LocationRecord]:
        """Pick ``count`` nodes for new replicas: least-loaded first,
        excluding nodes that already hold one."""
        backend = self.client.backends[backend_name]
        if not isinstance(backend, LocalDiskBackend):
            return [LocationRecord(backend=backend_name)][:count]
        have = {
            record.node
            for record in self.namenode.locations(block_id)
            if record.backend == backend_name
        }
        candidates = sorted(
            (node for node in backend.nodes if node not in have),
            key=lambda node: backend.stored_mb(node),
        )
        return [
            LocationRecord(backend=backend_name, node=node)
            for node in candidates[:count]
        ]

    # -- repair -------------------------------------------------------------------

    def repair(self, backend_name: str = "local-disk") -> int:
        """Re-replicate under-replicated blocks; returns replicas started.

        Priority hints from the plan are honoured: higher-priority blocks
        are repaired first (Section 5.3).
        """
        started = 0
        candidates = self.namenode.by_priority(
            self.namenode.under_replicated(self.replication_factor)
        )
        for block_id in candidates:
            records = self.namenode.locations(block_id)
            missing = self.replication_factor - len(records)
            source = records[0]
            block = self.namenode.block(block_id)
            for target in self.choose_targets(block_id, missing, backend_name):
                self.client.write(block, source.site, target)
                started += 1
        return started

    # -- migration -------------------------------------------------------------------

    def migrate(
        self,
        block_id: BlockId,
        destination: LocationRecord,
        drop_source: bool = True,
        on_complete: Callable[[Block], None] | None = None,
    ) -> None:
        """Move one block to ``destination`` (plan-driven, Section 4.5).

        The source replica is dropped after the copy lands, so the block
        never becomes unavailable mid-migration.
        """
        records = self.namenode.locations(block_id)
        if not records:
            raise ValueError(f"cannot migrate unavailable block {block_id}")
        source = min(
            records, key=lambda r: 0.0 if r.site == destination.site else 1.0
        )
        block = self.namenode.block(block_id)

        def landed(written: Block) -> None:
            if drop_source and source != destination:
                self.client.backends[source.backend].delete(source.node, block_id)
                self.namenode.remove_location(block_id, source)
            if on_complete is not None:
                on_complete(written)

        self.client.write(block, source.site, destination, landed)

    def migrate_file(
        self,
        chunks: list[BlockId],
        destination_for: Callable[[BlockId], LocationRecord],
        drop_source: bool = True,
    ) -> int:
        """Migrate many chunks; returns the number of migrations started."""
        for block_id in chunks:
            self.migrate(block_id, destination_for(block_id), drop_source)
        return len(chunks)
