"""The namenode: directory service of Conductor's storage system.

"The central component in Conductor's storage system is the namenode,
which provides a directory service for data, and manages upload,
replication and migration of the data as per the execution plan"
(paper Section 5.1).  It maps block ids to location records and keeps the
replication bookkeeping the replication manager acts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .backends import StorageBackend, StorageError
from .blocks import Block, BlockId, LocationRecord


class Namenode:
    """Block directory plus placement bookkeeping."""

    def __init__(self) -> None:
        self._blocks: dict[BlockId, Block] = {}
        self._locations: dict[BlockId, list[LocationRecord]] = {}
        #: Plan-driven priority hints from the filesystem driver ("which
        #: data block should be uploaded or replicated with higher
        #: priority", Section 5.3).  Higher = sooner.
        self._priorities: dict[BlockId, int] = {}

    # -- directory ------------------------------------------------------------

    def register(self, block: Block) -> None:
        """Make a block known (it has no replicas yet)."""
        if block.block_id in self._blocks:
            raise ValueError(f"block {block.block_id} already registered")
        self._blocks[block.block_id] = block
        self._locations[block.block_id] = []

    def block(self, block_id: BlockId) -> Block:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise StorageError(f"unknown block {block_id}") from None

    def blocks(self) -> list[BlockId]:
        return list(self._blocks)

    def exists(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    # -- locations ------------------------------------------------------------

    def add_location(self, block_id: BlockId, record: LocationRecord) -> None:
        locations = self._locations_of(block_id)
        if record not in locations:
            locations.append(record)

    def remove_location(self, block_id: BlockId, record: LocationRecord) -> None:
        locations = self._locations_of(block_id)
        if record in locations:
            locations.remove(record)

    def locations(self, block_id: BlockId) -> list[LocationRecord]:
        """All replicas' location records (possibly empty — data lost)."""
        return list(self._locations_of(block_id))

    def blocks_at(self, backend: str, node: str = "") -> list[BlockId]:
        """Blocks with a replica on a given backend (and node, if given)."""
        found = []
        for block_id, records in self._locations.items():
            for record in records:
                if record.backend == backend and (not node or record.node == node):
                    found.append(block_id)
                    break
        return found

    def drop_node(self, backend: str, node: str) -> list[BlockId]:
        """Remove every location on a failed/terminated node; returns the
        blocks that lost a replica (possibly now unavailable)."""
        affected = []
        for block_id, records in self._locations.items():
            keep = [r for r in records if not (r.backend == backend and r.node == node)]
            if len(keep) != len(records):
                self._locations[block_id] = keep
                affected.append(block_id)
        return affected

    # -- replication bookkeeping -----------------------------------------------

    def replication_of(self, block_id: BlockId) -> int:
        return len(self._locations_of(block_id))

    def under_replicated(self, factor: int) -> list[BlockId]:
        """Blocks with fewer than ``factor`` replicas but at least one."""
        return [
            block_id
            for block_id, records in self._locations.items()
            if 0 < len(records) < factor
        ]

    def unavailable(self) -> list[BlockId]:
        """Registered blocks with zero replicas — data loss (Section 2.1:
        lost intermediate results must be recomputed)."""
        return [b for b, records in self._locations.items() if not records]

    # -- priorities ------------------------------------------------------------

    def set_priority(self, block_id: BlockId, priority: int) -> None:
        self._priorities[block_id] = priority

    def priority_of(self, block_id: BlockId) -> int:
        return self._priorities.get(block_id, 0)

    def by_priority(self, block_ids: list[BlockId]) -> list[BlockId]:
        """Sort candidate blocks by descending priority (stable)."""
        return sorted(block_ids, key=lambda b: -self._priorities.get(b, 0))

    # -- internals ------------------------------------------------------------

    def _locations_of(self, block_id: BlockId) -> list[LocationRecord]:
        if block_id not in self._locations:
            raise StorageError(f"unknown block {block_id}")
        return self._locations[block_id]
