"""Public-API overhead: the facade + wire format must be nearly free.

The API redesign routes every request through ``JobSpec`` compilation,
the ``Orchestrator`` facade and (on the wire) an encode/decode pass.
This bench pins down what that costs per request on the path where
overhead could plausibly matter — a *warm-cache* submit, where the
service itself answers in microseconds:

- direct:  ``service.submit(problem)`` with a pre-built
  ``PlanningProblem`` (the pre-redesign fast path);
- facade:  ``Orchestrator.submit(spec)`` — spec -> problem compile
  (memoized), then the same cached service path;
- wire:    the full protocol round-trip — decode a ``plan_request``
  JSON line, submit, wrap the result in a ``plan_response``, encode it.

Required: the API layers add well under 5% of the latency of a direct
``Planner.plan()`` solve — in practice microseconds next to a solve's
seconds — and stay within tight absolute budgets of the direct warm
path, so a regression (say, compilation losing its memoization) fails
loudly.
"""

import gc
import time

from conftest import once, print_table

from repro.api import GoalSpec, JobSpec, Orchestrator, PlanRequestV1, decode, encode
from repro.core import Planner
from repro.service import PlanningService, ServiceConfig

SPEC = JobSpec(name="kmeans", input_gb=16.0, goal=GoalSpec(deadline_hours=6.0))
ROUNDS = 300

#: Absolute per-request budgets for the API layers, over the direct
#: warm-cache submit they wrap (generous: measured ~3-8us / ~80us).
FACADE_BUDGET_S = 50e-6
WIRE_BUDGET_S = 500e-6


def _mean_latency(fn, rounds: int = ROUNDS) -> float:
    gc.collect()
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def measure():
    with PlanningService(ServiceConfig(pool_mode="inline")) as service:
        orchestrator = Orchestrator(service=service)
        problem = orchestrator.compile(SPEC)
        request_line = encode(PlanRequestV1(job=SPEC, tenant="bench"))

        # The baseline the satellite names: one direct Planner.plan().
        t0 = time.perf_counter()
        Planner().plan(problem)
        plan_s = time.perf_counter() - t0

        # Warm the plan cache.
        first = service.submit(problem).result(timeout=300.0)
        assert first.ok and not first.cached

        def direct():
            result = service.submit(problem).result(timeout=60.0)
            assert result.cached

        def facade():
            result = orchestrator.submit(SPEC).result(timeout=60.0)
            assert result.cached

        def wire():
            request = decode(request_line)
            result = orchestrator.submit(request).result(timeout=60.0)
            line = encode(orchestrator.respond(result, request.request_id))
            assert '"cached": true' in line

        # Best-of-two per path, interleaved, so one GC pause or scheduler
        # hiccup cannot brand a 3-microsecond dispatch as a regression.
        direct_s = min(_mean_latency(direct), _mean_latency(direct))
        facade_s = min(_mean_latency(facade), _mean_latency(facade))
        wire_s = min(_mean_latency(wire), _mean_latency(wire))
    return plan_s, direct_s, facade_s, wire_s


def test_api_overhead(benchmark):
    plan_s, direct_s, facade_s, wire_s = once(benchmark, measure)
    facade_over = facade_s - direct_s
    wire_over = wire_s - direct_s

    print_table(
        "Public-API overhead on a warm cache (per request)",
        [
            ("direct Planner.plan()", f"{plan_s * 1e3:10.2f}ms", "baseline"),
            ("direct service.submit", f"{direct_s * 1e6:10.1f}us",
             f"{100 * direct_s / plan_s:8.4f}%"),
            ("Orchestrator.submit", f"{facade_s * 1e6:10.1f}us",
             f"{100 * facade_s / plan_s:8.4f}%"),
            ("decode+submit+encode", f"{wire_s * 1e6:10.1f}us",
             f"{100 * wire_s / plan_s:8.4f}%"),
        ],
        headers=("path", "latency", "of a solve"),
    )
    print(f"facade dispatch adds {facade_over * 1e6:.1f}us "
          f"({100 * facade_over / direct_s:+.1f}% of a warm submit); "
          f"wire round-trip adds {wire_over * 1e6:.1f}us")

    # The satellite's requirement: encode/decode + facade dispatch add
    # <5% latency over a direct Planner.plan() — they are microseconds
    # next to a solve's seconds.
    assert wire_s < 0.05 * plan_s, (
        f"wire path costs {100 * wire_s / plan_s:.2f}% of a solve (>= 5%)"
    )
    # And absolute regression guards over the direct warm path: if spec
    # compilation loses its memoization (or the wire format grows a
    # quadratic hot spot), these trip.
    assert facade_over < FACADE_BUDGET_S, (
        f"facade adds {facade_over * 1e6:.1f}us (> {FACADE_BUDGET_S * 1e6:.0f}us)"
    )
    assert wire_over < WIRE_BUDGET_S, (
        f"wire adds {wire_over * 1e6:.1f}us (> {WIRE_BUDGET_S * 1e6:.0f}us)"
    )
