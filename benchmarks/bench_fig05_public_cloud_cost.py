"""Figure 5: monetary cost of the four deployment options, cloud-only.

Paper: Hadoop-S3's charged-but-idle second hour doubles its cost (~$68);
Conductor lands within pennies of the cheapest option (~$27) while
meeting the 6-hour deadline.
"""

import pytest
from conftest import once, print_table

from repro.core import (
    DeploymentScenario,
    run_conductor,
    run_hadoop_direct,
    run_hadoop_s3,
    run_hadoop_upload_first,
)


@pytest.fixture(scope="module")
def results():
    scenario = DeploymentScenario()
    return {
        "Conductor": run_conductor(scenario),
        "Hadoop upload first": run_hadoop_upload_first(scenario, nodes=100),
        "Hadoop direct": run_hadoop_direct(scenario, nodes=16),
        "Hadoop S3": run_hadoop_s3(scenario, nodes=100),
    }


def test_fig05_costs(benchmark, results):
    once(benchmark, lambda: None)  # experiments run in the module fixture

    rows = []
    for name, result in results.items():
        breakdown = result.cost_breakdown()
        rows.append(
            (
                name,
                f"${result.total_cost:.2f}",
                f"${breakdown['network transfer']:.2f}",
                f"${breakdown['computation/EC2']:.2f}",
                f"${breakdown['storage/S3']:.3f}",
                f"${breakdown['storage/EC2']:.3f}",
            )
        )
    print_table(
        "Fig. 5: cost by deployment option (paper: 27 / 35.7 / 27.2 / 68)",
        rows,
        ("option", "total", "transfer", "EC2 compute", "S3 storage", "EC2 storage"),
    )

    costs = {name: r.total_cost for name, r in results.items()}
    # Shape: Conductor is within ~5% of the cheapest option...
    cheapest = min(costs.values())
    assert costs["Conductor"] <= cheapest * 1.05
    # ... Hadoop-S3 is roughly twice the cheaper options ...
    assert costs["Hadoop S3"] > 1.8 * costs["Hadoop direct"]
    # ... and upload-first sits in between.
    assert costs["Hadoop direct"] < costs["Hadoop upload first"] < costs["Hadoop S3"]
    # Every option met the 6 h deadline (as in the paper).
    assert all(r.deadline_met for r in results.values())
