"""Figure 16: model solving time vs input size and available resources.

Paper (Section 6.6): CPLEX solving time grows with input size (larger
inputs need more execution intervals, hence bigger models) and roughly
doubles with each feature/service set added: EC2-only < S3+EC2 <
EC2+S3+local.  Model *creation* stays under a second.

Our substrate solves with HiGHS instead of CPLEX, so absolute times are
not comparable — the shape (growth in input size, ordering across
resource sets) is what this bench checks.
"""

import math
import time

import pytest
from conftest import once, print_table

from repro.cloud import ec2_m1_large, local_cluster, s3
from repro.core import Goal, NetworkConditions, PlannerJob, PlanningProblem, build_model

INPUT_SIZES_GB = (32.0, 64.0, 128.0, 256.0)

RESOURCE_SETS = {
    "EC2 only": lambda: [ec2_m1_large()],
    "S3+EC2": lambda: [ec2_m1_large(), s3()],
    "EC2+S3+local": lambda: [ec2_m1_large(), s3(), local_cluster(5)],
}


def deadline_for(input_gb: float) -> float:
    """Horizon scales with input size, as in the paper (the input size
    'gives a lower bound on execution steps to include in the model')."""
    upload_hours = input_gb / NetworkConditions.from_mbit_s(16.0).uplink_gb_per_hour
    return max(6.0, math.ceil(upload_hours * 1.3))


def measure():
    measurements = []
    for set_name, factory in RESOURCE_SETS.items():
        for input_gb in INPUT_SIZES_GB:
            problem = PlanningProblem(
                job=PlannerJob(name="sweep", input_gb=input_gb),
                services=factory(),
                network=NetworkConditions.from_mbit_s(16.0),
                goal=Goal.min_cost(deadline_hours=deadline_for(input_gb)),
            )
            t0 = time.perf_counter()
            built = build_model(problem)
            build_seconds = time.perf_counter() - t0
            solution = built.solve()
            measurements.append(
                (
                    set_name,
                    input_gb,
                    build_seconds,
                    solution.solve_seconds,
                    built.model.stats()["variables"],
                )
            )
    return measurements


def test_fig16_solving_time(benchmark):
    measurements = once(benchmark, measure)

    rows = [
        (s, f"{gb:.0f} GB", f"{build_s*1e3:.0f} ms", f"{solve_s:.2f} s", vars_)
        for s, gb, build_s, solve_s, vars_ in measurements
    ]
    print_table(
        "Fig. 16: model build/solve time vs input size and resources",
        rows,
        ("resources", "input", "build", "solve", "variables"),
    )

    # Shape: model creation is cheap (paper: < 1 s)...
    assert all(m[2] < 1.0 for m in measurements)
    # ... model size grows with input size within each resource set ...
    for set_name in RESOURCE_SETS:
        sizes = [m[4] for m in measurements if m[0] == set_name]
        assert sizes == sorted(sizes) and sizes[0] < sizes[-1]
    # ... and richer resource sets produce bigger models at equal input.
    largest = {m[0]: m[4] for m in measurements if m[1] == INPUT_SIZES_GB[-1]}
    assert largest["EC2 only"] < largest["S3+EC2"] < largest["EC2+S3+local"]
    # Everything solved.
    assert all(m[3] >= 0 for m in measurements)


# -- incremental re-solve: warm-started, delta-patched LPs -----------------

RESOLVE_INPUT_GB = 64.0
RESOLVE_STEPS = 10


def resolve_problem(uplink_mbit: float) -> PlanningProblem:
    return PlanningProblem(
        job=PlannerJob(name="resolve", input_gb=RESOLVE_INPUT_GB),
        services=RESOURCE_SETS["S3+EC2"](),
        network=NetworkConditions.from_mbit_s(uplink_mbit),
        goal=Goal.min_cost(deadline_hours=deadline_for(RESOLVE_INPUT_GB)),
    )


def resolve_series() -> list[PlanningProblem]:
    """A re-plan series: the same deployment re-planned as the observed
    uplink drifts a little around its nominal 16 Mbit/s.  Structure is
    identical across the series; only bounds/RHS/cost data move."""
    jitter = (0.0, 0.1, -0.1, 0.05, -0.05, 0.08, -0.08, 0.02, -0.02, 0.06)
    return [resolve_problem(16.0 + jitter[k % len(jitter)])
            for k in range(RESOLVE_STEPS)]


def measure_resolve():
    from repro.core.planner import Planner
    from repro.service import IncrementalSolver

    series = resolve_series()

    cold_planner = Planner()
    cold = []
    for problem in series:
        t0 = time.perf_counter()
        plan = cold_planner.plan(problem)
        cold.append((time.perf_counter() - t0, plan.objective_value))

    warm_solver = IncrementalSolver()
    warm_solver.solve(resolve_problem(16.0))  # seed the retained matrix
    warm = []
    for problem in series:
        t0 = time.perf_counter()
        plan = warm_solver.solve(problem)
        warm.append((time.perf_counter() - t0, plan.objective_value))

    return cold, warm, warm_solver.stats


def test_fig16_incremental_resolve(benchmark, bench_metrics):
    cold, warm, stats = once(benchmark, measure_resolve)

    cold_mean = sum(t for t, _ in cold) / len(cold)
    warm_mean = sum(t for t, _ in warm) / len(warm)
    speedup = cold_mean / warm_mean
    rows = [
        (k, f"{ct*1e3:.1f} ms", f"{wt*1e3:.1f} ms", f"{ct/wt:.1f}x",
         f"{abs(wo - co) / max(1.0, abs(co)):.2e}")
        for k, ((ct, co), (wt, wo)) in enumerate(zip(cold, warm))
    ]
    print_table(
        "Incremental re-solve: warm (delta-patched) vs cold per re-plan",
        rows,
        ("step", "cold", "warm", "speedup", "rel obj diff"),
    )
    print(f"\nmean cold {cold_mean*1e3:.1f} ms, mean warm {warm_mean*1e3:.1f} ms "
          f"({speedup:.1f}x); warm={stats.warm} cold={stats.cold} "
          f"fallbacks={stats.structural_fallbacks + stats.rejected_fallbacks}")

    bench_metrics("warm_speedup", speedup)
    bench_metrics("cold_mean_s", cold_mean)
    bench_metrics("warm_mean_s", warm_mean)
    bench_metrics("warm_solves", stats.warm)
    bench_metrics("warm_rate", stats.warm_rate)

    # The replan hot path must be >= 5x faster than cold solving ...
    assert speedup >= 5.0, f"warm re-solve only {speedup:.1f}x faster than cold"
    # ... while answering with the same plan (objective equal within
    # solver tolerance, the 1 % MIP gap both paths run under) for every
    # step of the series ...
    for (_, cold_obj), (_, warm_obj) in zip(cold, warm):
        assert abs(warm_obj - cold_obj) <= 0.01 * max(1.0, abs(cold_obj))
    # ... and the speed must come from actual warm answers, not caching
    # accidents: most of the series re-certified the retained basis.
    assert stats.warm >= RESOLVE_STEPS - 2
