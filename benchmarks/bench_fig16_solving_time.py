"""Figure 16: model solving time vs input size and available resources.

Paper (Section 6.6): CPLEX solving time grows with input size (larger
inputs need more execution intervals, hence bigger models) and roughly
doubles with each feature/service set added: EC2-only < S3+EC2 <
EC2+S3+local.  Model *creation* stays under a second.

Our substrate solves with HiGHS instead of CPLEX, so absolute times are
not comparable — the shape (growth in input size, ordering across
resource sets) is what this bench checks.
"""

import math
import time

import pytest
from conftest import once, print_table

from repro.cloud import ec2_m1_large, local_cluster, s3
from repro.core import Goal, NetworkConditions, PlannerJob, PlanningProblem, build_model

INPUT_SIZES_GB = (32.0, 64.0, 128.0, 256.0)

RESOURCE_SETS = {
    "EC2 only": lambda: [ec2_m1_large()],
    "S3+EC2": lambda: [ec2_m1_large(), s3()],
    "EC2+S3+local": lambda: [ec2_m1_large(), s3(), local_cluster(5)],
}


def deadline_for(input_gb: float) -> float:
    """Horizon scales with input size, as in the paper (the input size
    'gives a lower bound on execution steps to include in the model')."""
    upload_hours = input_gb / NetworkConditions.from_mbit_s(16.0).uplink_gb_per_hour
    return max(6.0, math.ceil(upload_hours * 1.3))


def measure():
    measurements = []
    for set_name, factory in RESOURCE_SETS.items():
        for input_gb in INPUT_SIZES_GB:
            problem = PlanningProblem(
                job=PlannerJob(name="sweep", input_gb=input_gb),
                services=factory(),
                network=NetworkConditions.from_mbit_s(16.0),
                goal=Goal.min_cost(deadline_hours=deadline_for(input_gb)),
            )
            t0 = time.perf_counter()
            built = build_model(problem)
            build_seconds = time.perf_counter() - t0
            solution = built.solve()
            measurements.append(
                (
                    set_name,
                    input_gb,
                    build_seconds,
                    solution.solve_seconds,
                    built.model.stats()["variables"],
                )
            )
    return measurements


def test_fig16_solving_time(benchmark):
    measurements = once(benchmark, measure)

    rows = [
        (s, f"{gb:.0f} GB", f"{build_s*1e3:.0f} ms", f"{solve_s:.2f} s", vars_)
        for s, gb, build_s, solve_s, vars_ in measurements
    ]
    print_table(
        "Fig. 16: model build/solve time vs input size and resources",
        rows,
        ("resources", "input", "build", "solve", "variables"),
    )

    # Shape: model creation is cheap (paper: < 1 s)...
    assert all(m[2] < 1.0 for m in measurements)
    # ... model size grows with input size within each resource set ...
    for set_name in RESOURCE_SETS:
        sizes = [m[4] for m in measurements if m[0] == set_name]
        assert sizes == sorted(sizes) and sizes[0] < sizes[-1]
    # ... and richer resource sets produce bigger models at equal input.
    largest = {m[0]: m[4] for m in measurements if m[1] == INPUT_SIZES_GB[-1]}
    assert largest["EC2 only"] < largest["S3+EC2"] < largest["EC2+S3+local"]
    # Everything solved.
    assert all(m[3] >= 0 for m in measurements)
