"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the impact of modeling
decisions the reproduction had to make:

- streaming (eq. 4, same-interval) vs staged (lag-1) upload semantics;
- per-interval vs constant node allocation;
- allowing vs forbidding mid-run data migration;
- interval granularity (1 h vs 0.5 h).
"""

import pytest
from conftest import once, print_table

from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, Planner, PlannerJob, PlanningProblem

NETWORK = NetworkConditions.from_mbit_s(16.0)
JOB = PlannerJob(name="kmeans", input_gb=32.0)


def plan_with(**kwargs):
    problem = PlanningProblem(
        job=JOB,
        services=public_cloud(),
        network=NETWORK,
        goal=Goal.min_cost(deadline_hours=kwargs.pop("deadline", 6.0)),
        **kwargs,
    )
    return Planner().plan(problem)


def test_ablation_streaming_vs_staged(benchmark):
    plans = once(
        benchmark,
        lambda: {
            "streaming (lag 0)": plan_with(upload_read_lag=0),
            "staged (lag 1)": plan_with(upload_read_lag=1),
        },
    )
    rows = [
        (name, f"${p.predicted_cost:.2f}", f"{p.predicted_completion_hours:.1f}h",
         p.peak_nodes())
        for name, p in plans.items()
    ]
    print_table("Ablation: upload/read semantics", rows,
                ("variant", "cost", "completion", "peak nodes"))
    # Staged semantics waste the first interval, so they can never be
    # cheaper and typically need a higher peak.
    assert plans["staged (lag 1)"].predicted_cost >= plans["streaming (lag 0)"].predicted_cost - 1e-6


def test_ablation_constant_nodes(benchmark):
    plans = once(
        benchmark,
        lambda: {
            "per-interval": plan_with(),
            "constant": plan_with(constant_nodes=True),
        },
    )
    rows = [
        (name, f"${p.predicted_cost:.2f}", p.peak_nodes())
        for name, p in plans.items()
    ]
    print_table("Ablation: node allocation shape", rows,
                ("variant", "cost", "peak nodes"))
    # Constant allocation is a restriction: never cheaper.
    assert plans["constant"].predicted_cost >= plans["per-interval"].predicted_cost - 1e-6


def test_ablation_migration(benchmark):
    plans = once(
        benchmark,
        lambda: {
            "with migration": plan_with(allow_migration=True),
            "no migration": plan_with(allow_migration=False),
        },
    )
    rows = [(name, f"${p.predicted_cost:.2f}") for name, p in plans.items()]
    print_table("Ablation: data migration (Section 4.5)", rows, ("variant", "cost"))
    assert (
        plans["no migration"].predicted_cost
        >= plans["with migration"].predicted_cost - 1e-6
    )


def test_ablation_interval_granularity(benchmark):
    plans = once(
        benchmark,
        lambda: {
            "1.0 h": plan_with(interval_hours=1.0),
            "0.5 h": plan_with(interval_hours=0.5),
        },
    )
    rows = [
        (name, f"${p.predicted_cost:.2f}",
         p.model_stats["variables"], f"{p.solve_seconds:.2f}s")
        for name, p in plans.items()
    ]
    print_table("Ablation: interval granularity", rows,
                ("Δ", "cost", "variables", "solve"))
    # Finer intervals at least double the model size.
    assert plans["0.5 h"].model_stats["variables"] > 1.8 * plans["1.0 h"].model_stats["variables"]


def test_ablation_presolve(benchmark):
    """Presolve reductions on the Section-4 model (fixed columns from the
    system state, singleton capacity rows, bound-implied rows)."""
    from repro.core import PlanningProblem, SystemState, build_model
    from repro.lp.presolve import presolve

    def measure():
        job = JOB
        # A mid-flight re-planning state pins many columns: half the
        # input uploaded, a quarter already mapped (mapped bytes leave
        # the stored-input pool, which is what conservation requires).
        state = SystemState(
            hour=2.0,
            source_remaining_gb=job.input_gb / 2,
            stored_input={"ec2.m1.large": job.input_gb / 4},
            map_done_gb=job.input_gb / 4,
            stored_output={"ec2.m1.large": job.input_gb / 4 * job.map_output_ratio},
        )
        problem = PlanningProblem(
            job=job,
            services=public_cloud(),
            network=NETWORK,
            goal=Goal.min_cost(deadline_hours=6.0),
            state=state,
        )
        built = build_model(problem)
        compiled = built.model.compile()
        result = presolve(compiled)
        full = built.model.solve(backend="scipy")
        reduced = built.model.solve(backend="scipy", presolve=True)
        return compiled, result, full, reduced

    compiled, result, full, reduced = once(benchmark, measure)

    rows = [
        ("columns", compiled.num_vars, result.reduced.num_vars),
        ("rows", len(compiled.rows), len(result.reduced.rows)),
        ("objective", f"${full.objective:.2f}", f"${reduced.objective:.2f}"),
        ("solve", f"{full.solve_seconds:.2f}s", f"{reduced.solve_seconds:.2f}s"),
    ]
    print_table("Ablation: presolve on a re-planning model", rows,
                ("metric", "full", "presolved"))

    assert not result.infeasible
    assert result.reduced.num_vars < compiled.num_vars
    assert len(result.reduced.rows) < len(compiled.rows)
    # Identical optimum either way.
    assert reduced.objective == pytest.approx(full.objective, rel=1e-4)
