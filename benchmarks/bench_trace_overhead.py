"""Trace-logging overhead: the durable log must be nearly free.

The event-sourced tracer sits on the deploy hot loop — every interval,
re-plan, snapshot and lifecycle record is encoded and flushed to disk
as it happens.  This bench runs the Fig. 12 adaptation mechanic (a
mispredicted processing rate forcing mid-flight re-plans, so the log
carries the full record mix: intervals, replans, snapshots) through the
orchestrator twice — untraced, and traced to a real on-disk log — and
pins the wall-clock overhead.

Required: tracing adds < 5% wall-clock to the adaptation run.  The LP
solves dominate by orders of magnitude; a regression here means the
tracer grew a hot spot (per-record re-open, quadratic encode, a lock
convoy on the session thread).
"""

import os
import tempfile
import time

from conftest import once, print_table

from repro.api import GoalSpec, JobSpec, NetworkSpec, Orchestrator
from repro.core.conditions import ActualConditions
from repro.obs import RunTracer, TraceWriter

SPEC = JobSpec(
    name="kmeans",
    input_gb=32.0,
    goal=GoalSpec(deadline_hours=6.0),
    network=NetworkSpec(uplink_mbit_s=16.0),
)

#: Ground truth far below the catalog's believed rates — the Fig. 12
#: mechanic: the monitor detects the shortfall and re-plans mid-flight.
ACTUAL = ActualConditions(
    throughput_gb_per_hour={"ec2.m1.large": 0.25, "ec2.m1.xlarge": 0.5}
)

ROUNDS = 3


def _run(trace_path=None):
    """One full adaptation deploy; a fresh orchestrator each time so the
    plan cache cannot make later rounds incomparably faster."""
    orchestrator = Orchestrator()
    tracer = None
    writer = None
    if trace_path is not None:
        writer = TraceWriter(trace_path)
        tracer = RunTracer(writer)
    try:
        start = time.perf_counter()
        result = orchestrator.deploy(SPEC, actual=ACTUAL, tracer=tracer)
        elapsed = time.perf_counter() - start
    finally:
        if writer is not None:
            writer.close()
    assert result.completed and result.replans >= 1
    return elapsed, (writer.count if writer else 0)


def measure():
    untraced = []
    traced = []
    records = 0
    log_bytes = 0
    with tempfile.TemporaryDirectory() as tmp:
        # Interleaved rounds, best-of-N per variant: one GC pause or
        # page-cache hiccup must not brand the tracer a regression.
        for round_index in range(ROUNDS):
            elapsed, _ = _run()
            untraced.append(elapsed)
            path = os.path.join(tmp, f"run-{round_index}.jsonl")
            elapsed, records = _run(path)
            traced.append(elapsed)
            log_bytes = os.path.getsize(path)
    return min(untraced), min(traced), records, log_bytes


def test_trace_overhead(benchmark):
    untraced_s, traced_s, records, log_bytes = once(benchmark, measure)
    overhead = traced_s / untraced_s - 1.0

    print_table(
        "Trace-logging overhead on the Fig. 12 adaptation run",
        [
            ("untraced deploy", f"{untraced_s * 1e3:10.1f}ms", ""),
            ("traced deploy", f"{traced_s * 1e3:10.1f}ms",
             f"{100 * overhead:+6.2f}%"),
            ("log written", f"{records:7d} records",
             f"{log_bytes / 1024:6.1f} KiB"),
        ],
        headers=("path", "wall clock", "overhead"),
    )

    assert records > 0 and log_bytes > 0
    # The tentpole's budget: durable tracing costs < 5% wall-clock.
    assert overhead < 0.05, (
        f"tracing adds {100 * overhead:.2f}% wall-clock (>= 5%)"
    )
