"""Figure 14: job cost when deploying on spot markets, nine scenarios.

Paper (Section 6.5): regular on-demand instances vs spot deployment on
the AWS-like and electricity-like traces under four predictors (opt, p0,
p5, p13).  Spot cuts the average cost by 50-60%; the trivial p0 predictor
is close to optimal; history-window predictors raise the worst case on
the patternless AWS trace ("waiting in vain").
"""

import pytest
from conftest import once, print_table

from repro.cloud import aws_like_trace, electricity_like_trace
from repro.core import PlannerJob, predictor_suite
from repro.core.spot_sim import run_regular_baseline, run_spot_scenario

DEADLINE_HOURS = 10.0
DAYS = 16
SEED = 2012
OFFSETS = [24 * d for d in range(1, 13)]  # one run per day, 12 runs


@pytest.fixture(scope="module")
def scenario_results():
    job = PlannerJob(name="kmeans", input_gb=32.0)
    results = {"regular": run_regular_baseline(job, deadline_hours=DEADLINE_HOURS)}
    traces = {
        "aws": aws_like_trace(days=DAYS, seed=SEED),
        "el": electricity_like_trace(days=DAYS, seed=SEED),
    }
    for trace_name, trace in traces.items():
        for predictor in predictor_suite(windows=(5, 13)):
            label = f"{trace_name}-{predictor.name}"
            results[label] = run_spot_scenario(
                job,
                trace,
                predictor,
                deadline_hours=DEADLINE_HOURS,
                start_offsets=OFFSETS,
                label=label,
            )
    return results


def test_fig14_spot_savings(benchmark, scenario_results):
    once(benchmark, lambda: None)

    rows = []
    for label, result in scenario_results.items():
        summary = result.summary
        rows.append(
            (
                label,
                f"${summary['average']:.2f}",
                f"${summary['maximum']:.2f}",
                f"{summary['stddev']:.2f}",
            )
        )
    print_table(
        "Fig. 14: spot scenarios (paper avg: regular 26.6, aws 12.1-12.4, "
        "el 11.5-11.6)",
        rows,
        ("scenario", "average", "maximum", "stddev"),
    )

    regular = scenario_results["regular"].summary["average"]
    spot_avgs = {
        label: r.summary["average"]
        for label, r in scenario_results.items()
        if label != "regular"
    }
    # Shape: every spot scenario achieves large average savings (the
    # paper reports 50-60%; we assert at least 40%).
    for label, avg in spot_avgs.items():
        assert avg < 0.65 * regular, (label, avg, regular)
    # The oracle is (as it must be) the cheapest per trace, within noise.
    for trace_name in ("aws", "el"):
        opt = spot_avgs[f"{trace_name}-opt"]
        for window in ("p0", "p5", "p13"):
            assert spot_avgs[f"{trace_name}-{window}"] >= opt - 0.25
    # The trivial predictor remains in the optimal's neighbourhood
    # (paper: "highly effective in both spot markets").
    for trace_name in ("aws", "el"):
        assert spot_avgs[f"{trace_name}-p0"] <= 1.45 * spot_avgs[f"{trace_name}-opt"]
    # Worst cases exceed averages visibly for non-oracle predictors.
    for label, result in scenario_results.items():
        if label == "regular":
            continue
        assert result.summary["maximum"] >= result.summary["average"] - 1e-9
