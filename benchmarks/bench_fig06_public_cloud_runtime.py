"""Figure 6: completion time of the four deployment options, cloud-only.

Paper: the streamed options (Conductor, Hadoop direct) need no distinct
upload phase; Conductor is only slightly slower than the fastest option
and everyone fits the 6-hour deadline.
"""

import pytest
from conftest import once, print_table

from repro.core import (
    DeploymentScenario,
    run_conductor,
    run_hadoop_direct,
    run_hadoop_s3,
    run_hadoop_upload_first,
)


@pytest.fixture(scope="module")
def results():
    scenario = DeploymentScenario()
    return {
        "Conductor": run_conductor(scenario),
        "Hadoop upload first": run_hadoop_upload_first(scenario, nodes=100),
        "Hadoop direct": run_hadoop_direct(scenario, nodes=16),
        "Hadoop S3": run_hadoop_s3(scenario, nodes=100),
    }


def test_fig06_runtimes(benchmark, results):
    once(benchmark, lambda: None)

    rows = []
    for name, result in results.items():
        if result.streamed:
            phases = f"streamed {result.runtime_s:.0f}s"
        else:
            phases = (
                f"upload {result.upload_s:.0f}s + process {result.process_s:.0f}s"
            )
        rows.append((name, f"{result.runtime_s:.0f}s",
                     f"{result.runtime_s / 3600:.2f}h", phases))
    print_table(
        "Fig. 6: job completion time (paper: ~18000-21500s, all under 6 h)",
        rows,
        ("option", "runtime", "hours", "phases"),
    )

    runtimes = {name: r.runtime_s for name, r in results.items()}
    # Shape: direct (fully streamed, right-sized) is the fastest.
    assert runtimes["Hadoop direct"] == min(runtimes.values())
    # Distinct-upload options spend most of their time uploading.
    for name in ("Hadoop upload first", "Hadoop S3"):
        assert results[name].upload_s > 0.7 * runtimes[name]
    # All options meet the deadline.
    assert all(r.deadline_met for r in results.values())
    # Streamed options report no upload phase.
    assert results["Conductor"].streamed and results["Hadoop direct"].streamed
