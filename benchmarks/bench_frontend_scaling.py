"""Frontend shard scaling: cache-hit dispatch throughput and the
10k-tenant socket accountability run.

Why sharding pays on one core: the dispatcher pops work by scanning the
head of every *active tenant queue* (priority/deadline/FIFO ordering),
so a cache-served workload's per-request cost is dominated by an
O(active tenants) Python loop, not the GIL or the solver.  Sharding
tenants across N brokers divides that scan N ways — each dispatcher
only ever sees its own shard's tenants — which is why the speedup holds
on a single CPU where parallel solving could not.

Two gates:

- ``test_cache_hit_shard_scaling`` — the same warmed, cache-served
  workload drained by 1 shard vs 4; required: >= 2.5x.
- ``test_frontend_10k_tenants`` — a real ``repro serve --listen``
  subprocess driven by the asyncio loadgen with 10,000 concurrent
  tenant connections; required: every request answered (completed or a
  structured shed/error response), zero lost.
"""

import asyncio
import os
import re
import signal
import subprocess
import sys
import threading
import time

from conftest import once, print_table

from repro.service import PlanRequest, ServiceConfig, problem_for_scenario
from repro.service.frontend import (
    ShardedPlanningService,
    generate_wire_workload,
    run_loadgen,
)

#: Distinct problems in the drain workload (tiny grid = cache-heavy,
#: exactly like real planning traffic).
PROBLEM_KWARGS = (
    dict(input_gb=8.0, deadline_hours=6.0),
    dict(input_gb=16.0, deadline_hours=6.0),
    dict(input_gb=16.0, deadline_hours=8.0),
    dict(input_gb=32.0, deadline_hours=8.0),
)
TENANTS = 4096
REQUESTS_PER_TENANT = 2
#: Concurrent submitters modelling the asyncio frontend's connection
#: storm: many client sessions deliver requests faster than one
#: dispatcher can serve them, so a real backlog of active tenants
#: builds — exactly the regime where the head scan is the bottleneck.
SUBMITTERS = 8


def drain_elapsed(shards: int) -> tuple[float, int]:
    """Wall time to push TENANTS x REQUESTS_PER_TENANT cache-served
    requests through ``shards`` broker shards (ordered admission, so
    every request rides the dispatch path — the piece sharding scales)."""
    problems = [problem_for_scenario("quickstart", **kw) for kw in PROBLEM_KWARGS]
    config = ServiceConfig(
        pool_mode="inline",
        max_workers=1,
        ordered_admission=True,
        max_pending_total=TENANTS * REQUESTS_PER_TENANT * 2,
        max_pending_per_tenant=REQUESTS_PER_TENANT * 2,
    )
    service = ShardedPlanningService(config, shards=shards)
    with service:
        # Warm every distinct problem into the shared L2 so the drain
        # below is pure cache-hit dispatch.
        for problem in problems:
            assert service.submit(problem, tenant="warmup").result(
                timeout=300.0
            ).ok

        tickets: list[list] = [[] for _ in range(SUBMITTERS)]
        failures: list[BaseException] = []

        def submit_slice(slot: int) -> None:
            try:
                for index in range(slot, TENANTS, SUBMITTERS):
                    tenant = f"tenant-{index:05d}"
                    for repeat in range(REQUESTS_PER_TENANT):
                        tickets[slot].append(service.submit_request(PlanRequest(
                            tenant=tenant,
                            problem=problems[(index + repeat) % len(problems)],
                            priority=index % 3,
                        )))
            except BaseException as exc:  # surfaced after join
                failures.append(exc)

        threads = [
            threading.Thread(target=submit_slice, args=(slot,))
            for slot in range(SUBMITTERS)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        for slice_tickets in tickets:
            for ticket in slice_tickets:
                assert ticket.result(timeout=600.0).ok
        elapsed = time.perf_counter() - t0
        hits = service.metrics.cache_hits
    return elapsed, hits


def measure_scaling():
    single, single_hits = drain_elapsed(1)
    quad, quad_hits = drain_elapsed(4)
    return single, quad, single_hits, quad_hits


def test_cache_hit_shard_scaling(benchmark, bench_metrics):
    single, quad, single_hits, quad_hits = once(benchmark, measure_scaling)
    total = TENANTS * REQUESTS_PER_TENANT
    speedup = single / quad if quad > 0 else float("inf")

    print_table(
        f"Cache-hit drain, {TENANTS} tenants x {REQUESTS_PER_TENANT} requests",
        [
            ("1 shard", f"{single:.2f} s", f"{total / single:,.0f} req/s"),
            ("4 shards", f"{quad:.2f} s", f"{total / quad:,.0f} req/s"),
            ("speedup", f"{speedup:.2f}x", ""),
        ],
        ("configuration", "wall", "throughput"),
    )
    bench_metrics("shard_speedup", speedup)
    bench_metrics("single_shard_rps", total / single)
    bench_metrics("quad_shard_rps", total / quad)

    # Every request was served from the plan cache in both runs — the
    # comparison is dispatch scan cost, not solver luck.
    assert single_hits == quad_hits == total
    # The tentpole's bar: 4 shards >= 2.5x one shard on the cache-hit
    # dispatch path.
    assert speedup >= 2.5


# -- 10k concurrent tenants over the socket ------------------------------

LISTEN_RE = re.compile(r"listening on ([\d.]+):(\d+)")


def run_10k_tenants():
    """Start ``repro serve --listen`` as a subprocess (each side needs
    its own file-descriptor budget for 10k sockets) and drive it with
    10,000 concurrent tenant connections."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]
    )
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--listen", "127.0.0.1:0", "--shards", "4",
         "--pool", "thread", "--workers", "2",
         "--max-pending-total", "16384",
         "--max-pending-per-tenant", "64"],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = server.stderr.readline()
        match = LISTEN_RE.search(line)
        assert match, f"no listen line from server: {line!r}"
        address = f"{match.group(1)}:{match.group(2)}"
        # Keep draining stderr: a full pipe would block the server's
        # event loop mid-benchmark.
        drainer = threading.Thread(
            target=server.stderr.read, daemon=True
        )
        drainer.start()
        workload = generate_wire_workload(10_000, 1, seed=0, distinct=6)
        report = asyncio.run(run_loadgen(
            [address],
            workload,
            connect_concurrency=512,
            response_timeout_s=300.0,
        ))
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=60)
        except subprocess.TimeoutExpired:
            server.kill()
    return report


def test_frontend_10k_tenants(benchmark, bench_metrics):
    report = once(benchmark, run_10k_tenants)

    print_table(
        "10k concurrent tenants over the socket frontend",
        [
            ("sent", f"{report.sent}", ""),
            ("completed", f"{report.completed}",
             f"{report.cached} cached"),
            ("shed (rejected)", f"{report.rejected}",
             f"{report.shed_rate:.2%}"),
            ("expired/failed", f"{report.expired + report.failed}", ""),
            ("lost", f"{report.lost}", ""),
            ("p50 / p99", f"{report.percentile_s(50):.3f} s",
             f"{report.percentile_s(99):.3f} s"),
            ("wall", f"{report.elapsed_s:.1f} s",
             f"{report.answered / report.elapsed_s:,.0f} resp/s"),
        ],
        ("metric", "value", "detail"),
    )
    bench_metrics("tenants_10k_p99_s", report.percentile_s(99))
    bench_metrics("tenants_10k_shed_rate", report.shed_rate)
    bench_metrics("tenants_10k_lost", float(report.lost))

    assert report.sent == 10_000
    assert report.connect_failures == 0
    # Accountability under load: every request got a response — a plan
    # or a structured shed/error on the existing vocabulary — and none
    # vanished.
    assert report.lost == 0
    assert report.answered == report.sent
    # The workload is cache-heavy by construction; the vast majority
    # must actually complete, shedding is the escape valve.
    assert report.completed >= report.sent * 0.8
