"""Figure 9: storage-mix sweep with 10x S3 price and larger inputs.

Paper (analytic extension of Fig. 8): with S3 storage priced 10x higher
and inputs of 64/128/256 GB, hitting the sweet spot matters more as data
grows — savings reach about a third of the cost at 256 GB, with the
optimum near 50% on EC2.
"""

import pytest
from conftest import once, print_table

from bench_fig08_storage_mix_32gb import FRACTIONS, sweep

SIZES_GB = (64.0, 128.0, 256.0)


def full_sweep():
    # The 8 Mbit/s uplink moves 3.52 GB/h: the horizon must scale with
    # the input (the paper's Fig. 9 is an analytic projection, so it has
    # no deadline pressure either).  The LP interval coarsens with the
    # input so the MILP stays tractable (~24-32 intervals at every
    # size); Fig. 9 is a shape result, and the billing-granularity error
    # this introduces is well below the effects being plotted.
    # Migration is disabled: the sweep pins placement via upload
    # fractions, so letting the solver shuffle data afterwards only
    # blurs the swept variable while blowing up the MILP.  The MIP gap
    # is relaxed to 3% (vs the default 1%) — well below the cost
    # differences Fig. 9 plots.
    from repro.core import Planner

    planner = Planner(mip_gap=0.03, time_limit=60.0)
    results = {}
    for size in SIZES_GB:
        deadline = float(int(size / 3.5 * 1.25) + 2)
        interval = max(1.0, round(deadline / 28.0))
        results[size] = sweep(
            input_gb=size,
            s3_price_multiplier=10.0,
            deadline=deadline,
            interval_hours=interval,
            allow_migration=False,
            planner=planner,
        )
    return results


def test_fig09_scaled_storage_mix(benchmark):
    results = once(benchmark, full_sweep)

    rows = []
    for size, costs in results.items():
        for fraction, cost in costs.items():
            rows.append((f"{size:.0f} GB", f"{fraction:.2f}", f"${cost:.2f}"))
    print_table(
        "Fig. 9: cost vs EC2 fraction, 10x S3 price (paper: min near 1/2)",
        rows,
        ("input", "fraction on EC2", "cost"),
    )

    for size, costs in results.items():
        interior = {f: c for f, c in costs.items() if 0.0 < f < 1.0}
        best_f = min(interior, key=interior.get)
        best = interior[best_f]
        worst_endpoint = max(costs[0.0], costs[1.0])
        # Shape: interior optimum beats both endpoints at every size.
        assert best <= costs[0.0] + 1e-6 and best <= costs[1.0] + 1e-6

    # Savings (vs the worst endpoint) grow with input size and reach
    # roughly a third at 256 GB (paper: "about 1/3 of the cost").
    def savings(costs):
        interior = {f: c for f, c in costs.items() if 0.0 < f < 1.0}
        best = min(interior.values())
        worst = max(costs[0.0], costs[1.0])
        return 1.0 - best / worst

    series = [savings(results[size]) for size in SIZES_GB]
    assert series[-1] >= series[0] - 0.02  # non-decreasing (tolerance)
    assert series[-1] > 0.20
