"""Figure 15: throughput of the storage options.

Paper (Section 6.6): copying 32 GB of 64 MB files on large EC2
instances.  HDFS is fastest (~21 MB/s); Conductor's storage layer is
roughly 25% slower; s3cmd is comparable to Conductor; the Hadoop S3
client (forced SSL) is far slower (~7 MB/s).
"""

from conftest import once, print_table

from repro.storage.throughput import run_storage_throughput_experiment


def test_fig15_storage_throughput(benchmark):
    results = once(benchmark, lambda: run_storage_throughput_experiment(32.0))
    by_name = {r.option: r.throughput_mb_s for r in results}

    rows = [
        (r.option, f"{r.throughput_mb_s:.1f} MB/s", f"{r.elapsed_s:.0f}s")
        for r in results
    ]
    print_table(
        "Fig. 15: storage throughput (paper: ~16 / ~21 / ~7 / ~15 MB/s)",
        rows,
        ("option", "throughput", "32 GB copy time"),
    )

    # Shape: HDFS fastest; Conductor ~25% below HDFS; s3cmd comparable to
    # Conductor; SSL-throttled Hadoop-S3 far behind everyone.
    assert by_name["HDFS"] == max(by_name.values())
    ratio = by_name["Conductor"] / by_name["HDFS"]
    assert 0.65 <= ratio <= 0.85
    assert abs(by_name["Conductor"] - by_name["S3 (s3cmd)"]) < 3.0
    assert by_name["S3 (Hadoop)"] < 0.55 * by_name["S3 (s3cmd)"]
