"""Figure 10: hybrid cloud — Conductor vs Hadoop with the right guess.

Paper (Section 6.3): a 5-node local cluster plus EC2, 4-hour deadline.
Conductor stores on EC2 and picks ~16 instances (a constant allocation);
a user who *happened* to guess 16 for plain Hadoop gets nearly the same
cost, which is the point — Conductor automates the guess.
"""

import pytest
from conftest import once, print_table

from repro.cloud import local_cluster
from repro.core import DeploymentScenario, run_conductor, run_hadoop_direct


@pytest.fixture(scope="module")
def results():
    scenario = DeploymentScenario(
        deadline_hours=4.0,
        local=local_cluster(5),
        local_nodes=5,
        constant_node_plan=True,  # the paper's hybrid plan style
        planning_margin=0.88,  # tail headroom; yields the paper's 16 nodes
    )
    conductor = run_conductor(scenario)
    hadoop = run_hadoop_direct(scenario, nodes=16)
    return {"Conductor": conductor, "Hadoop (guessed 16)": hadoop}


def test_fig10_hybrid(benchmark, results):
    once(benchmark, lambda: None)

    conductor = results["Conductor"]
    rows = [
        (
            name,
            f"${r.total_cost:.2f}",
            f"{r.runtime_s / 3600:.2f}h",
            "yes" if r.deadline_met else "no",
        )
        for name, r in results.items()
    ]
    rows.append(
        (
            "Conductor (plan)",
            f"${conductor.plan.predicted_cost:.2f}",
            f"{conductor.plan.predicted_completion_hours:.2f}h",
            "yes",
        )
    )
    print_table(
        "Fig. 10: hybrid deployment, 4 h deadline (paper: both ~$20-22)",
        rows,
        ("option", "cost", "runtime", "deadline met"),
    )

    # Shape: Conductor's plan picks a constant EC2 allocation equal to
    # the paper's 16 and its plan cost matches the paper's ~$20-22.
    peak = conductor.plan.peak_nodes("ec2.m1.large")
    assert 13 <= peak <= 18
    assert conductor.plan.predicted_cost < 23.0
    # The plan meets the deadline; the deployed run lands within 10% of
    # it (our engine has no cross-task read prefetch, so the final WAN-
    # bound wave pays one task of latency — see EXPERIMENTS.md).
    assert conductor.plan.predicted_completion_hours <= 4.0 + 1e-6
    assert conductor.runtime_s <= 4.0 * 3600 * 1.10
    # Hadoop with the lucky right guess is comparable to the plan.
    hadoop_cost = results["Hadoop (guessed 16)"].total_cost
    assert abs(conductor.plan.predicted_cost - hadoop_cost) < 3.0
