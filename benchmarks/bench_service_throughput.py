"""Planning-service throughput: requests/sec and cache-hit speedup.

The multi-tenant service earns its place by (a) keeping the solver pool
busy across tenants and (b) never paying for the same LP twice: a cached
submit skips model generation *and* solving.  This bench measures both —
a synthetic tenant workload's sustained request rate, and the latency of
a cached submit against the cold solve it replaces (required: >= 10x).
"""

import time

from conftest import once, print_table

from repro.service import (
    PlanningService,
    ServiceConfig,
    generate_workload,
    problem_for_scenario,
    run_workload,
)

#: The cold/cached comparison problem (the paper's quickstart scenario).
COLD_KWARGS = dict(input_gb=16.0, deadline_hours=6.0)


def measure_cache_speedup():
    """Cold solve latency vs. repeated (cached) submits of the problem."""
    with PlanningService(ServiceConfig(pool_mode="inline")) as service:
        problem = problem_for_scenario("quickstart", **COLD_KWARGS)
        t0 = time.perf_counter()
        first = service.submit(problem).result(timeout=300.0)
        cold_s = time.perf_counter() - t0
        assert first.ok and not first.cached

        cached_samples = []
        for _ in range(20):
            t0 = time.perf_counter()
            result = service.submit(problem).result(timeout=300.0)
            cached_samples.append(time.perf_counter() - t0)
            assert result.ok and result.cached
    return cold_s, cached_samples


def measure_workload(requests: int = 32, tenants: int = 8):
    """Sustained throughput over the synthetic tenant mix."""
    workload = generate_workload(tenants=tenants, requests=requests, seed=0)
    with PlanningService(ServiceConfig(pool_mode="thread", max_workers=2)) as service:
        t0 = time.perf_counter()
        results, rejected = run_workload(service, workload)
        elapsed = time.perf_counter() - t0
        snapshot = service.metrics.snapshot()
    return results, rejected, elapsed, snapshot


def test_service_cache_speedup(benchmark):
    cold_s, cached_samples = once(benchmark, measure_cache_speedup)
    cached_s = sum(cached_samples) / len(cached_samples)
    speedup = cold_s / cached_s if cached_s > 0 else float("inf")

    print_table(
        "Plan-cache speedup (identical submits)",
        [
            ("cold solve", f"{cold_s * 1e3:.1f} ms", ""),
            ("cached submit (mean of 20)", f"{cached_s * 1e3:.3f} ms",
             f"{speedup:.0f}x"),
        ],
        ("path", "latency", "speedup"),
    )

    # The tentpole's bar: cached submits at least 10x faster than cold
    # LP solves.  In practice the gap is orders of magnitude.
    assert speedup >= 10.0


def test_service_throughput(benchmark):
    results, rejected, elapsed, snapshot = once(benchmark, measure_workload)

    ok = sum(1 for r in results if r.ok)
    rate = len(results) / elapsed
    print_table(
        "Service throughput (8 tenants, mixed scenarios)",
        [
            ("requests", len(results), ""),
            ("completed", ok, ""),
            ("rejected", rejected, ""),
            ("wall time", f"{elapsed:.2f} s", ""),
            ("throughput", f"{rate:.2f} req/s", ""),
            ("cache hit rate", f"{snapshot['cache_hit_rate']:.0%}", ""),
            ("solve p50", f"{snapshot['solve_latency']['p50_s'] * 1e3:.0f} ms", ""),
            ("solve p90", f"{snapshot['solve_latency']['p90_s'] * 1e3:.0f} ms", ""),
        ],
        ("metric", "value", ""),
    )

    # Every request terminates, none rejected at these queue bounds, and
    # the repeated-workload cache does real work.
    assert ok == len(results) > 0
    assert rejected == 0
    assert snapshot["cache_hit_rate"] > 0
