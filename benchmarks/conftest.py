"""Shared benchmark helpers.

Every bench regenerates one figure of the paper's evaluation and prints
the series/rows the paper reports; run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables.  Shape assertions (who wins, by
roughly what factor) are part of each bench, so a regression in the
reproduction fails loudly.

Pass ``--bench-json PATH`` to additionally write a machine-readable
record of the session: per-benchmark wall-clock seconds plus any named
metrics a bench reported through the ``bench_metrics`` fixture (warm/
cold speedups, cache rates, ...).  CI's perf-smoke job reads that file
with ``tools/check_perf.py`` to gate regressions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest


def print_table(title: str, rows: list[tuple], headers: tuple) -> None:
    """Render a small fixed-width table to stdout."""
    print(f"\n== {title} ==")
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# -- --bench-json: machine-readable session record ------------------------

#: nodeid -> {"seconds": float, "metrics": {name: value}, "outcome": str}
_RECORDS: dict[str, dict] = {}


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="write per-benchmark timings and reported metrics as JSON",
    )


def _record(nodeid: str) -> dict:
    return _RECORDS.setdefault(
        nodeid, {"seconds": None, "metrics": {}, "outcome": None}
    )


@pytest.fixture
def bench_metrics(request: pytest.FixtureRequest):
    """Report named numbers (speedups, rates) into the ``--bench-json``
    record for this benchmark.  Usable whether or not the option is on."""
    metrics = _record(request.node.nodeid)["metrics"]

    def report(name: str, value: float) -> None:
        metrics[name] = float(value)

    return report


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item):
    start = time.perf_counter()
    yield
    _record(item.nodeid)["seconds"] = time.perf_counter() - start


def pytest_runtest_logreport(report: pytest.TestReport) -> None:
    if report.when == "call":
        _record(report.nodeid)["outcome"] = report.outcome


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    path = session.config.getoption("--bench-json")
    if not path:
        return
    payload = {
        "exit_status": int(exitstatus),
        "benchmarks": [
            {"name": nodeid, **record}
            for nodeid, record in sorted(_RECORDS.items())
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
