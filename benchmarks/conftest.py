"""Shared benchmark helpers.

Every bench regenerates one figure of the paper's evaluation and prints
the series/rows the paper reports; run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables.  Shape assertions (who wins, by
roughly what factor) are part of each bench, so a regression in the
reproduction fails loudly.
"""

from __future__ import annotations


def print_table(title: str, rows: list[tuple], headers: tuple) -> None:
    """Render a small fixed-width table to stdout."""
    print(f"\n== {title} ==")
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
