"""Ablation: reliability-differentiated storage for multi-stage pipelines.

Quantifies the paper's Section 2.1 claim — "the cost of this recovery
... generally increases as the computation progresses, making more
reliable storage options more and more useful" — with the expected-cost
model of :mod:`repro.core.reliability`:

- expected pipeline cost under all-cheap vs all-durable vs the chosen
  per-stage mix, as pipeline depth grows;
- the break-even durability premium per stage (monotone increasing).
"""

import pytest
from conftest import once, print_table

from repro.core import (
    PipelineReliabilityModel,
    RetentionPolicy,
    StageProfile,
    StorageTier,
    choose_tiers,
    durable_premium_break_even,
)

CHEAP = StorageTier("1x-replica", cost_gb_hour=0.5e-4, loss_per_hour=0.01)
DURABLE = StorageTier("3x-replica", cost_gb_hour=1.5e-4, loss_per_hour=1e-10)

DEPTHS = (1, 2, 4, 6, 8)


def stages_of_depth(n):
    return [
        StageProfile(f"stage{i}", exec_cost=8.0, exec_hours=1.0, output_gb=40.0)
        for i in range(n)
    ]


def depth_sweep():
    rows = {}
    for depth in DEPTHS:
        stages = stages_of_depth(depth)
        model = PipelineReliabilityModel(
            stages, RetentionPolicy.DISCARD_AFTER_USE
        )
        cheap = model.evaluate([CHEAP] * depth).total_cost
        durable = model.evaluate([DURABLE] * depth).total_cost
        chosen = choose_tiers(
            stages, [CHEAP, DURABLE], RetentionPolicy.DISCARD_AFTER_USE
        )
        rows[depth] = (cheap, durable, chosen.outcome.total_cost,
                       chosen.tier_names)
    return rows


def test_reliability_depth_sweep(benchmark):
    rows = once(benchmark, depth_sweep)

    table = [
        (
            depth,
            f"${cheap:.2f}",
            f"${durable:.2f}",
            f"${chosen:.2f}",
            "".join("D" if n == DURABLE.name else "c" for n in names),
        )
        for depth, (cheap, durable, chosen, names) in rows.items()
    ]
    print_table(
        "Ablation: expected cost vs pipeline depth (c=cheap tier, D=durable)",
        table,
        ("depth", "all cheap", "all durable", "chosen mix", "pattern"),
    )

    for depth, (cheap, durable, chosen, _names) in rows.items():
        # The chosen mix never loses to either uniform policy.
        assert chosen <= cheap + 1e-9
        assert chosen <= durable + 1e-9

    # The penalty for ignoring reliability (all-cheap vs chosen) grows
    # with pipeline depth: deeper cascades make losses costlier.
    penalties = [
        rows[d][0] - rows[d][2] for d in DEPTHS
    ]
    assert penalties[-1] > penalties[0]
    assert all(
        penalties[i] <= penalties[i + 1] + 1e-9
        for i in range(len(penalties) - 1)
    )


def test_reliability_break_even_premium(benchmark):
    stages = stages_of_depth(6)
    premiums = once(
        benchmark, lambda: durable_premium_break_even(stages, CHEAP)
    )

    print_table(
        "Ablation: break-even durability premium per stage ($/GB/h)",
        [(i, f"{p:.6f}") for i, p in enumerate(premiums)],
        ("stage", "premium"),
    )

    # Paper Section 2.1: reliability grows more valuable with progress.
    exposed = premiums[:-1]  # final stage has no downstream exposure
    assert all(
        exposed[i] <= exposed[i + 1] + 1e-12 for i in range(len(exposed) - 1)
    )
    assert exposed[-1] > exposed[0]
