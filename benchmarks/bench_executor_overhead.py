"""Executor-protocol overhead: the backend seam must be nearly free.

The pluggable-backend refactor put a protocol (`repro.exec.Executor`)
between `ControllerRun` and the fluid simulator.  Two things to pin:

1. **Seam cost** — driving the simulator through the protocol
   (`SimExecutor.run_interval`, the `make_executor` indirection, the
   capacity hooks) must stay within 2% of calling `FluidExecutor`
   directly, interval for interval.  The hooks sit on the per-interval
   hot path, so a regression here means the seam grew real work.
2. **Pool throughput** — the process-pool backend actually executes a
   small wordcount (real map/reduce callables over real synthesized
   bytes); the bench reports its task throughput and checks the merged
   word counts account for every map task's output, so the "real work"
   backend is demonstrably doing real work.
"""

import time

from conftest import once, print_table

from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, PlannerJob
from repro.core.conditions import ActualConditions
from repro.core.controller import JobController
from repro.core.executor import FluidExecutor
from repro.core.problem import SystemState
from repro.exec import make_executor
from repro.exec.pool import PoolExecutor

NET = NetworkConditions.from_mbit_s(16.0)

#: Interval executions per timing round — enough that the per-call seam
#: cost is measurable above timer noise.
STEPS = 2000
ROUNDS = 5


def _planned_run():
    """One solved plan + the interval/state pair the loops re-execute."""
    controller = JobController(
        PlannerJob(name="seam", input_gb=16.0),
        public_cloud(),
        Goal.min_cost(deadline_hours=8.0),
        network=NET,
    )
    run = controller.start(ActualConditions.as_predicted())
    problem = controller._problem(run.state)
    interval = run.plans[0].interval_at(0.0)
    return problem, interval


def _time_direct(problem, interval):
    # Executors are built once per adopted plan, so construction is off
    # the hot path; what repeats every interval is the execute call.
    executor = FluidExecutor(problem, ActualConditions.as_predicted())
    start = time.perf_counter()
    for _ in range(STEPS):
        executor.execute_interval(interval, SystemState.initial(problem.job))
    return time.perf_counter() - start


def _time_protocol(problem, interval):
    executor = make_executor("sim", problem, ActualConditions.as_predicted())
    start = time.perf_counter()
    for _ in range(STEPS):
        executor.run_interval(interval, SystemState.initial(problem.job))
    return time.perf_counter() - start


def measure_seam():
    problem, interval = _planned_run()
    direct = []
    protocol = []
    # Interleaved, best-of-N: one GC pause must not brand the seam slow.
    for _ in range(ROUNDS):
        direct.append(_time_direct(problem, interval))
        protocol.append(_time_protocol(problem, interval))
    return min(direct), min(protocol)


def measure_pool_wordcount():
    """Small wordcount through the pool backend: throughput + totals."""
    controller = JobController(
        PlannerJob(name="wordcount", input_gb=8.0),
        public_cloud(),
        Goal.min_cost(deadline_hours=6.0),
        network=NET,
        backend="pool",
        backend_options={"task_gb": 0.5, "payload_bytes": 65536},
    )
    run = controller.start(ActualConditions.as_predicted())
    executor = run._executor
    assert isinstance(executor, PoolExecutor)
    start = time.perf_counter()
    try:
        while run.step() is not None:
            pass
        elapsed = time.perf_counter() - start
        result = run.result()
        assert result.completed
        counts = executor.collected_counts()
        tasks = executor.tasks_run
        failed = executor.tasks_failed
    finally:
        run.close()
    return elapsed, tasks, failed, sum(counts.values()), len(counts)


def test_executor_overhead(benchmark):
    def experiment():
        return measure_seam(), measure_pool_wordcount()

    (direct_s, protocol_s), pool = once(benchmark, experiment)
    overhead = protocol_s / direct_s - 1.0
    elapsed, tasks, failed, words, vocabulary = pool

    print_table(
        f"Executor seam cost ({STEPS} intervals, best of {ROUNDS})",
        [
            ("FluidExecutor direct", f"{direct_s * 1e3:9.1f}ms", ""),
            ("sim via protocol", f"{protocol_s * 1e3:9.1f}ms",
             f"{100 * overhead:+6.2f}%"),
        ],
        headers=("path", "wall clock", "overhead"),
    )
    print_table(
        "Pool backend on an 8 GB wordcount",
        [
            ("tasks executed", tasks, f"{tasks / elapsed:8.1f} tasks/s"),
            ("tasks failed", failed, ""),
            ("words counted", words, f"{vocabulary} distinct"),
        ],
        headers=("metric", "value", "rate"),
    )

    # The refactor's budget: the protocol seam costs < 2%.
    assert overhead < 0.02, (
        f"protocol seam adds {100 * overhead:.2f}% per interval (>= 2%)"
    )
    # The pool really ran the job: every task ok, real words counted.
    assert failed == 0
    assert tasks >= 16  # 8 GB at 0.5 GB/task, plus reduces
    assert words > 0 and vocabulary > 1
