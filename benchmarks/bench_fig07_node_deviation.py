"""Figure 7: cost and runtime when deviating from the chosen node count.

Paper: with five fewer nodes (11) the job misses the 6-hour deadline;
with five more (21) it costs more for no deadline benefit — validating
the planner's choice of 16.
"""

import pytest
from conftest import once, print_table

from repro.core import DeploymentScenario, run_hadoop_direct

NODE_COUNTS = (11, 16, 21)


@pytest.fixture(scope="module")
def results():
    scenario = DeploymentScenario()
    return {n: run_hadoop_direct(scenario, nodes=n) for n in NODE_COUNTS}


def test_fig07_node_deviation(benchmark, results):
    once(benchmark, lambda: None)

    rows = [
        (
            n,
            f"${r.total_cost:.2f}",
            f"{r.runtime_s / 3600:.2f}h",
            "yes" if r.deadline_met else "MISSED",
        )
        for n, r in results.items()
    ]
    print_table(
        "Fig. 7: deviating from the optimal node count (deadline 6 h)",
        rows,
        ("nodes", "cost", "runtime", "deadline met"),
    )

    # Shape (paper): under-provisioning misses the deadline...
    assert not results[11].deadline_met
    # ... the chosen count meets it at the lowest cost ...
    assert results[16].deadline_met
    assert results[16].total_cost == min(r.total_cost for r in results.values())
    # ... and over-provisioning costs strictly more without being needed.
    assert results[21].deadline_met
    assert results[21].total_cost > results[16].total_cost
