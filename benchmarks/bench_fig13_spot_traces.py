"""Figure 13: the two spot price histories.

Paper: (a) a synthetic trace derived from an electricity spot market —
strongly diurnal, non-negative, kept below/near the on-demand price;
(b) the original AWS m1.large history — a flat floor with spikes and
*no* diurnal pattern, which is what defeats history-based predictors.
"""

import numpy as np
from conftest import once, print_table

from repro.cloud import aws_like_trace, electricity_like_trace
from repro.cloud.catalog import EC2_LARGE_PRICE

DAYS = 30
SEED = 2012


def generate():
    return (
        electricity_like_trace(days=DAYS, seed=SEED),
        aws_like_trace(days=DAYS, seed=SEED),
    )


def lag24_correlation(prices: np.ndarray) -> float:
    return float(np.corrcoef(prices[:-24], prices[24:])[0, 1])


def test_fig13_spot_traces(benchmark):
    el, aws = once(benchmark, generate)

    rows = []
    for trace in (el, aws):
        prices = trace.prices
        rows.append(
            (
                trace.label,
                f"{prices.min():.3f}",
                f"{np.median(prices):.3f}",
                f"{prices.max():.3f}",
                f"{lag24_correlation(prices):.2f}",
            )
        )
    print_table(
        "Fig. 13: spot price histories (on-demand $0.34)",
        rows,
        ("trace", "min $", "median $", "max $", "lag-24h corr"),
    )
    # Hourly profile (averaged over days) — the diurnal signature.
    profile = el.prices[: DAYS * 24].reshape(DAYS, 24).mean(axis=0)
    print("electricity mean-by-hour:",
          " ".join(f"{p:.2f}" for p in profile))

    # Shape: electricity is predictable from history, AWS is not.
    assert lag24_correlation(el.prices) > 0.5
    assert abs(lag24_correlation(aws.prices)) < 0.25
    # Both stay non-negative and in the vicinity of (below ~1.5x) the
    # on-demand price, as the paper's adapted data did.
    for trace in (el, aws):
        assert trace.prices.min() >= 0
        assert trace.prices.max() <= 1.5 * EC2_LARGE_PRICE
    # The AWS floor sits near the historical ~$0.16.
    assert 0.10 < np.median(aws.prices) < 0.25
