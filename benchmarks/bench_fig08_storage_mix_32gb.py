"""Figure 8: total job cost vs fraction of input stored on EC2 (32 GB).

Paper setup (Section 6.2, modified job): 8 Mbit/s uplink, a small
reference set giving 6.2 GB/h per node.  Neither pure option is optimal:
the minimum lies at roughly two thirds of the data on EC2 virtual disks,
with the rest staged through S3 while no instances run yet.

Note on S3 request granularity: the sweep uses 1 MB average I/O
operations for S3 (the 2011 Hadoop S3 filesystem's small-buffer writes),
which is what makes the all-S3 endpoint visibly expensive — see
EXPERIMENTS.md.
"""

import pytest
from conftest import once, print_table

from repro.cloud import (
    KMEANS_FAST_THROUGHPUT_GB_H,
    KMEANS_THROUGHPUT_GB_H,
    ec2_m1_large,
    ec2_m1_xlarge,
    s3,
)
from repro.core import Goal, NetworkConditions, PlannerJob, plan_job

FRACTIONS = [0.0, 0.25, 0.5, 0.65, 0.8, 1.0]


def fig8_services():
    return [
        ec2_m1_large(),
        ec2_m1_xlarge(),
        s3().replace(avg_op_mb=1.0),  # Hadoop-style small I/O ops
    ]


def sweep(
    input_gb=32.0,
    s3_price_multiplier=1.0,
    deadline=12.0,
    interval_hours=1.0,
    allow_migration=True,
    planner=None,
):
    job = PlannerJob(
        name="kmeans-fast",
        input_gb=input_gb,
        throughput_scale=KMEANS_FAST_THROUGHPUT_GB_H / KMEANS_THROUGHPUT_GB_H,
    )
    network = NetworkConditions.from_mbit_s(8.0)
    services = fig8_services()
    if s3_price_multiplier != 1.0:
        services = [
            svc.replace(cost_tstore_gb_hour=svc.cost_tstore_gb_hour * s3_price_multiplier)
            if svc.name == "s3"
            else svc
            for svc in services
        ]
    costs = {}
    for fraction in FRACTIONS:
        plan = plan_job(
            job,
            services,
            Goal.min_cost(deadline_hours=deadline),
            network=network,
            upload_fractions={"ec2.m1.large": fraction, "s3": 1.0 - fraction},
            interval_hours=interval_hours,
            allow_migration=allow_migration,
            planner=planner,
        )
        costs[fraction] = plan.predicted_cost
    return costs


def test_fig08_storage_mix(benchmark):
    costs = once(benchmark, sweep)

    rows = [(f"{f:.2f}", f"${c:.3f}") for f, c in costs.items()]
    print_table(
        "Fig. 8: cost vs fraction of 32 GB stored on EC2 (paper: min at ~2/3)",
        rows,
        ("fraction on EC2", "cost"),
    )

    interior = {f: c for f, c in costs.items() if 0.0 < f < 1.0}
    best_fraction = min(interior, key=interior.get)
    # Shape: an interior mix beats both pure options...
    assert interior[best_fraction] < costs[0.0]
    assert interior[best_fraction] < costs[1.0]
    # ... and the optimum sits in the upper half (paper: roughly 2/3).
    assert 0.4 <= best_fraction <= 0.9
