"""Fleet adaptation: event-driven re-planning vs. a fixed cadence.

The paper's adaptation claim (Figs. 12-14) at fleet scale: eight
concurrent deployments share one simulated substrate — one spot market
(the two Fig. 13 price histories), one failure process — under a 2x
node-rate under-estimate (the Section 6.4 scenario: nodes turn out
faster than modeled, so the honest reaction is to *shrink* the
allocation).  Two runtimes face identical worlds:

- ``event``: the fleet scheduler re-plans a deployment the moment a
  substrate event or an observed deviation concerns it;
- ``interval``: the same fleet re-plans only on a fixed 8 h cadence —
  the non-adaptive baseline, blind between marks.

Event-driven re-planning must be cheaper on *both* traces: the stale
plans keep renting nodes sized for the believed (half) rate, while the
adaptive fleet rightsizes within an hour of observing reality.  The
shared plan cache must also show coalescing: deployments of equal shape
re-planning on the same shared event pay for one solve.
"""

from conftest import once, print_table

from repro.cloud.traces import aws_like_trace, electricity_like_trace
from repro.core import Goal, MarginBidder, PlannerJob, WindowMaxPredictor
from repro.core.spot_sim import spot_services
from repro.fleet import FleetConfig, FleetScheduler, Substrate

DAYS = 8
SEED = 2012
DEPLOYMENTS = 8
DEADLINE_HOURS = 10.0
CADENCE_HOURS = 8.0
START_HOUR = 26.0  # 02:00 on day two: predictors have history, night is cheap
#: Fig. 12's deviation, inverted: actual per-node rate is 2x the believed.
RATE_FACTOR = 2.0


def build_fleet(trace, mode: str) -> FleetScheduler:
    spot = spot_services()[0]
    substrate = Substrate(
        {spot.name: trace},
        eviction_bids={spot.name: spot.price_per_node_hour},
    )
    fleet = FleetScheduler(
        substrate,
        FleetConfig(
            mode=mode,
            interval_cadence_hours=CADENCE_HOURS,
            start_hour=START_HOUR,
        ),
    )
    for i in range(DEPLOYMENTS):
        fleet.add(
            f"tenant-{i + 1}",
            PlannerJob(name="kmeans", input_gb=16.0 if i % 2 == 0 else 24.0),
            spot_services(),
            Goal.min_cost(deadline_hours=DEADLINE_HOURS),
            predictor=MarginBidder(WindowMaxPredictor(5), margin=0.3),
            actual_rates={spot.name: spot.throughput_gb_per_hour * RATE_FACTOR},
        )
    return fleet


def run_all():
    results = {}
    for label, maker in (
        ("electricity", electricity_like_trace),
        ("aws", aws_like_trace),
    ):
        trace = maker(days=DAYS, seed=SEED)
        for mode in ("event", "interval"):
            results[(label, mode)] = build_fleet(trace, mode).run()
    return results


def test_fleet_adaptation(benchmark):
    results = once(benchmark, run_all)

    rows = []
    for (label, mode), result in results.items():
        rows.append(
            (
                label,
                mode,
                f"{result.total_cost:.2f}",
                f"{result.makespan_hours:.0f}",
                f"{result.deadlines_met}/{len(result.deployments)}",
                result.total_replans,
                f"{result.solves}+{result.cache_hits}",
            )
        )
    print_table(
        "Fleet adaptation: 8 deployments, one substrate (Fig. 13 traces)",
        rows,
        ("trace", "mode", "total $", "makespan h", "met", "re-plans",
         "solves+hits"),
    )

    for label in ("electricity", "aws"):
        event = results[(label, "event")]
        interval = results[(label, "interval")]
        # Everyone shares one substrate and completes.
        assert event.completed == DEPLOYMENTS
        assert interval.completed == DEPLOYMENTS
        # The headline: reacting to events beats waiting for the cadence.
        assert event.total_cost < interval.total_cost, label
        # Adaptation keeps the fleet inside its deadlines.
        assert event.deadlines_met == DEPLOYMENTS
        # Event-driven re-plans actually happened (not a trivial tie) ...
        assert event.total_replans > interval.total_replans
        # ... and coalesced: same-shape deployments re-planning on shared
        # events hit the warm plan cache instead of re-solving.
        assert event.cache_hits > event.solves

    total_event = sum(r.total_cost for (_, m), r in results.items() if m == "event")
    total_interval = sum(
        r.total_cost for (_, m), r in results.items() if m == "interval"
    )
    saving = 1.0 - total_event / total_interval
    print(f"\nevent-driven total ${total_event:.2f} vs "
          f"fixed-interval ${total_interval:.2f} ({saving:.0%} cheaper)")
    assert saving > 0.10
