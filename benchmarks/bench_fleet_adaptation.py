"""Fleet adaptation: event-driven re-planning vs. a fixed cadence.

The paper's adaptation claim (Figs. 12-14) at fleet scale: eight
concurrent deployments share one simulated substrate — one spot market
(the two Fig. 13 price histories), one failure process — under a 2x
node-rate under-estimate (the Section 6.4 scenario: nodes turn out
faster than modeled, so the honest reaction is to *shrink* the
allocation).  Two runtimes face identical worlds:

- ``event``: the fleet scheduler re-plans a deployment the moment a
  substrate event or an observed deviation concerns it;
- ``interval``: the same fleet re-plans only on a fixed 8 h cadence —
  the non-adaptive baseline, blind between marks.

Event-driven re-planning must be cheaper on *both* traces: the stale
plans keep renting nodes sized for the believed (half) rate, while the
adaptive fleet rightsizes within an hour of observing reality.  The
shared plan cache must also show coalescing: deployments of equal shape
re-planning on the same shared event pay for one solve.
"""

from conftest import once, print_table

from repro.cloud.traces import aws_like_trace, electricity_like_trace
from repro.core import Goal, MarginBidder, PlannerJob, WindowMaxPredictor
from repro.core.spot_sim import spot_services
from repro.fleet import FleetConfig, FleetScheduler, Substrate

DAYS = 8
SEED = 2012
DEPLOYMENTS = 8
DEADLINE_HOURS = 10.0
CADENCE_HOURS = 8.0
START_HOUR = 26.0  # 02:00 on day two: predictors have history, night is cheap
#: Fig. 12's deviation, inverted: actual per-node rate is 2x the believed.
RATE_FACTOR = 2.0


def build_fleet(trace, mode: str) -> FleetScheduler:
    spot = spot_services()[0]
    substrate = Substrate(
        {spot.name: trace},
        eviction_bids={spot.name: spot.price_per_node_hour},
    )
    fleet = FleetScheduler(
        substrate,
        FleetConfig(
            mode=mode,
            interval_cadence_hours=CADENCE_HOURS,
            start_hour=START_HOUR,
        ),
    )
    for i in range(DEPLOYMENTS):
        fleet.add(
            f"tenant-{i + 1}",
            PlannerJob(name="kmeans", input_gb=16.0 if i % 2 == 0 else 24.0),
            spot_services(),
            Goal.min_cost(deadline_hours=DEADLINE_HOURS),
            predictor=MarginBidder(WindowMaxPredictor(5), margin=0.3),
            actual_rates={spot.name: spot.throughput_gb_per_hour * RATE_FACTOR},
        )
    return fleet


def run_all():
    results = {}
    for label, maker in (
        ("electricity", electricity_like_trace),
        ("aws", aws_like_trace),
    ):
        trace = maker(days=DAYS, seed=SEED)
        for mode in ("event", "interval"):
            results[(label, mode)] = build_fleet(trace, mode).run()
    return results


def test_fleet_adaptation(benchmark):
    results = once(benchmark, run_all)

    rows = []
    for (label, mode), result in results.items():
        rows.append(
            (
                label,
                mode,
                f"{result.total_cost:.2f}",
                f"{result.makespan_hours:.0f}",
                f"{result.deadlines_met}/{len(result.deployments)}",
                result.total_replans,
                f"{result.solves}+{result.cache_hits}",
            )
        )
    print_table(
        "Fleet adaptation: 8 deployments, one substrate (Fig. 13 traces)",
        rows,
        ("trace", "mode", "total $", "makespan h", "met", "re-plans",
         "solves+hits"),
    )

    for label in ("electricity", "aws"):
        event = results[(label, "event")]
        interval = results[(label, "interval")]
        # Everyone shares one substrate and completes.
        assert event.completed == DEPLOYMENTS
        assert interval.completed == DEPLOYMENTS
        # The headline: reacting to events beats waiting for the cadence.
        assert event.total_cost < interval.total_cost, label
        # Adaptation keeps the fleet inside its deadlines.
        assert event.deadlines_met == DEPLOYMENTS
        # Event-driven re-plans actually happened (not a trivial tie) ...
        assert event.total_replans > interval.total_replans
        # ... and coalesced: same-shape deployments re-planning on shared
        # events hit the warm plan cache instead of re-solving.
        assert event.cache_hits > event.solves

    total_event = sum(r.total_cost for (_, m), r in results.items() if m == "event")
    total_interval = sum(
        r.total_cost for (_, m), r in results.items() if m == "interval"
    )
    saving = 1.0 - total_event / total_interval
    print(f"\nevent-driven total ${total_event:.2f} vs "
          f"fixed-interval ${total_interval:.2f} ({saving:.0%} cheaper)")
    assert saving > 0.10


# -- the replan hot path: warm re-solves on the Fig. 13 spot mix -----------

REPLAN_STEPS = 16


#: Per-replan believed-rate drift: the spread of learned node rates a
#: fleet's deviation-triggered replans carry within one scheduler step.
RATE_DRIFT = (1.0, 1.01, 0.99, 1.005, 0.995, 1.008,
              0.992, 1.002, 0.998, 1.006, 0.994, 1.004)


def replan_mix(trace) -> list:
    """The Fig. 13 spot-trace replan mix: the burst of deviation-
    triggered replans a fleet step produces.  Every deployment sees the
    same rolled-forward price forecast off the trace, but each carries a
    slightly different *learned* node rate — so the problems share one
    structure and differ only in data (matrix coefficients and costs)."""
    from repro.core import NetworkConditions, PlanningProblem

    spot = spot_services()[0]
    estimates = WindowMaxPredictor(5).estimate(
        trace, START_HOUR, int(DEADLINE_HOURS)
    )
    problems = []
    for step in range(REPLAN_STEPS):
        factor = RATE_DRIFT[step % len(RATE_DRIFT)]
        services = [
            s.replace(throughput_gb_per_hour=s.throughput_gb_per_hour * factor)
            if s.can_compute
            else s
            for s in spot_services()
        ]
        problems.append(
            PlanningProblem(
                job=PlannerJob(name="kmeans", input_gb=16.0),
                services=services,
                network=NetworkConditions(),
                goal=Goal.min_cost(deadline_hours=DEADLINE_HOURS),
                spot_price_estimates={spot.name: estimates},
            )
        )
    return problems


def measure_warm_replans():
    import time

    from repro.core.planner import Planner
    from repro.service import IncrementalSolver

    trace = electricity_like_trace(days=DAYS, seed=SEED)
    problems = replan_mix(trace)

    cold_planner = Planner()
    cold = []
    for problem in problems:
        t0 = time.perf_counter()
        plan = cold_planner.plan(problem)
        cold.append((time.perf_counter() - t0, plan.objective_value))

    warm_solver = IncrementalSolver()
    warm_solver.solve(problems[0])  # seed the retained matrix
    warm = []
    for problem in problems:
        t0 = time.perf_counter()
        plan = warm_solver.solve(problem)
        warm.append((time.perf_counter() - t0, plan.objective_value))

    # The same-step batch: every deployment in one scheduler step whose
    # replans share a structure solves as one block-diagonal LP.
    batch = replan_mix(trace)[:4]
    t0 = time.perf_counter()
    batched = warm_solver.solve_many(batch)
    batch_seconds = time.perf_counter() - t0

    return cold, warm, (batch_seconds, batched), warm_solver.stats


def test_fleet_warm_replan_speedup(benchmark, bench_metrics):
    cold, warm, (batch_seconds, batched), stats = once(
        benchmark, measure_warm_replans
    )

    cold_mean = sum(t for t, _ in cold) / len(cold)
    warm_mean = sum(t for t, _ in warm) / len(warm)
    speedup = cold_mean / warm_mean
    rows = [
        (k, f"{ct*1e3:.1f} ms", f"{wt*1e3:.1f} ms", f"{ct/wt:.1f}x",
         f"{abs(wo - co) / max(1.0, abs(co)):.2e}")
        for k, ((ct, co), (wt, wo)) in enumerate(zip(cold, warm))
    ]
    print_table(
        "Replan hot path: warm vs cold on the Fig. 13 spot replan mix",
        rows,
        ("hour", "cold", "warm", "speedup", "rel obj diff"),
    )
    print(f"\nmean cold {cold_mean*1e3:.1f} ms, mean warm {warm_mean*1e3:.1f} ms "
          f"({speedup:.1f}x); warm={stats.warm} cold={stats.cold} "
          f"fallbacks={stats.structural_fallbacks + stats.rejected_fallbacks}; "
          f"batch of {len(batched)} in {batch_seconds*1e3:.1f} ms")

    bench_metrics("warm_speedup", speedup)
    bench_metrics("cold_mean_s", cold_mean)
    bench_metrics("warm_mean_s", warm_mean)
    bench_metrics("warm_solves", stats.warm)
    bench_metrics("batched_problems", stats.batched_problems)

    # The replan hot path must be >= 5x faster than solving cold ...
    assert speedup >= 5.0, f"warm re-solve only {speedup:.1f}x faster than cold"
    # ... with the same answers (objective within the 1 % solver gap) ...
    for (_, cold_obj), (_, warm_obj) in zip(cold, warm):
        assert abs(warm_obj - cold_obj) <= 0.01 * max(1.0, abs(cold_obj))
    # ... mostly via genuine warm re-certification, not cache luck ...
    assert stats.warm >= REPLAN_STEPS - 2
    # ... and concurrent same-structure replans batched into one block
    # solve that answers each cheaper than a mean cold solve.
    assert stats.batched_problems >= 4
    assert all(not isinstance(p, Exception) for p in batched)
    assert batch_seconds / len(batched) < cold_mean
