"""Figure 11: hybrid cloud — cost/runtime of guessing the node count wrong.

Paper: under-estimating EC2 instances (11) misses the 4-hour deadline;
over-estimating (21) raises the cost.
"""

import pytest
from conftest import once, print_table

from repro.cloud import local_cluster
from repro.core import DeploymentScenario, run_hadoop_direct

NODE_COUNTS = (11, 16, 21)


@pytest.fixture(scope="module")
def results():
    scenario = DeploymentScenario(
        deadline_hours=4.0, local=local_cluster(5), local_nodes=5
    )
    return {n: run_hadoop_direct(scenario, nodes=n) for n in NODE_COUNTS}


def test_fig11_hybrid_deviation(benchmark, results):
    once(benchmark, lambda: None)

    rows = [
        (
            n,
            f"${r.total_cost:.2f}",
            f"{r.runtime_s / 3600:.2f}h",
            "yes" if r.deadline_met else "MISSED",
        )
        for n, r in results.items()
    ]
    print_table(
        "Fig. 11: hybrid, deviating node counts (deadline 4 h)",
        rows,
        ("EC2 nodes", "cost", "runtime", "deadline met"),
    )

    # Shape: 11 nodes are too few for 4 h; 21 cost more than 16.
    assert results[11].runtime_s > results[16].runtime_s
    assert not results[11].deadline_met
    assert results[21].total_cost > results[16].total_cost
