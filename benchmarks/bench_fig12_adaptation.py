"""Figure 12: adapting to a mispredicted processing rate.

Paper (Section 6.4): the model assumes 1.44 GB/h per node but nodes
really do 0.44 GB/h.  The initial plan uses 3 nodes in hour one and 5
from hour two; monitoring reveals the shortfall after the first hour,
Conductor re-plans to 16-18 nodes, and the job still meets the 6-hour
deadline.
"""

import pytest
from conftest import once, print_table

from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, PlannerJob
from repro.core.conditions import ActualConditions
from repro.core.controller import ControllerConfig, JobController

BELIEVED_GB_H = 1.44
ACTUAL_GB_H = 0.44


def run_adaptation():
    believed = [
        s.replace(throughput_gb_per_hour=BELIEVED_GB_H)
        if s.name == "ec2.m1.large"
        else s
        for s in public_cloud()
    ]
    controller = JobController(
        PlannerJob(name="kmeans", input_gb=32.0),
        believed,
        Goal.min_cost(deadline_hours=6.0),
        network=NetworkConditions.from_mbit_s(16.0),
        config=ControllerConfig(split_mb=25.0),  # ~1300 tasks, as in Fig. 12b
    )
    actual = ActualConditions(
        throughput_gb_per_hour={
            "ec2.m1.large": ACTUAL_GB_H,
            "ec2.m1.xlarge": 0.30,
        }
    )
    return controller.run(actual)


def test_fig12_adaptation(benchmark):
    result = once(benchmark, run_adaptation)

    initial = result.plans[0].node_allocation_series()
    print_table(
        "Fig. 12a: initial plan node allocation (paper: 3 then 5)",
        [(f"{h:.0f}", n) for h, n in initial],
        ("hour", "nodes"),
    )
    print_table(
        "Fig. 12a: actually allocated nodes after adaptation (paper: 16-18)",
        [(f"{h:.0f}", n) for h, n in result.node_series],
        ("hour", "nodes"),
    )
    tasks = [(f"{h:.1f}", n) for h, n in result.task_series]
    print_table(
        "Fig. 12b: completed tasks over time",
        tasks,
        ("hour", "tasks done"),
    )

    # Shape: the initial plan is small (sized for the optimistic rate)...
    initial_peak = result.plans[0].peak_nodes()
    assert initial_peak <= 8
    # ... a deviation is detected and triggers at least one re-plan ...
    assert result.replans >= 1
    # ... the updated allocation is roughly 3x larger (paper: 5 -> 16/18)
    adapted_peak = max(n for _h, n in result.node_series)
    assert adapted_peak >= 2.5 * initial_peak
    # ... and the job still completes within the deadline.
    assert result.completed
    assert result.deadline_met
    # Fig. 12b: all ~1300 tasks complete.
    assert result.total_tasks >= 1300
