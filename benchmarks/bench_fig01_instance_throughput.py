"""Figure 1: specified (ECU-projected) vs measured instance throughput.

Paper: "a consistently increasing throughput divergence between the
projected and measured application performance" across m1.large,
m1.xlarge and c1.xlarge.
"""

from conftest import once, print_table

from repro.workloads import run_instance_benchmark


def test_fig01_instance_throughput(benchmark):
    measurements = once(benchmark, run_instance_benchmark)

    rows = [
        (
            m.instance,
            f"{m.ecu:.0f}",
            f"{m.projected_gb_per_hour:.2f}",
            f"{m.measured_gb_per_hour:.2f}",
            f"{m.divergence:.2f}",
        )
        for m in measurements
    ]
    print_table(
        "Fig. 1: specified vs measured performance",
        rows,
        ("instance", "ECU", "projected GB/h", "measured GB/h", "divergence"),
    )

    # Shape: divergence grows monotonically with ECU; the anchor has none.
    divergences = [m.divergence for m in measurements]
    assert divergences[0] == 0.0
    assert all(a < b for a, b in zip(divergences, divergences[1:]))
    # The largest instance realizes well under 2/3 of its projection.
    assert measurements[-1].efficiency < 0.67
