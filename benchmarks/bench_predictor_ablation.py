"""Ablation: extended spot predictors vs the paper's p0/pX line-up.

Section 4.7 notes "more elaborate methods ... could also be leveraged"
for spot price prediction.  This bench backtests the extended suite
(EWMA, seasonal-naive, AR(1), quantile) against the paper's predictors
on both trace families and re-runs the Fig. 14 deployment scenario with
the best of them, quantifying how much prediction quality buys:

- on the *diurnal* (electricity-style) trace, seasonal structure is
  learnable: seasonal-naive beats p0 on forecast error;
- on the *patternless* (AWS-style) trace, nothing beats assuming the
  current price persists — the paper's own conclusion.
"""

import pytest
from conftest import once, print_table

from repro.cloud import KMEANS_THROUGHPUT_GB_H
from repro.cloud.traces import aws_like_trace, electricity_like_trace
from repro.core import (
    CurrentPricePredictor,
    NetworkConditions,
    PlannerJob,
    SeasonalNaivePredictor,
    WindowMaxPredictor,
    extended_predictor_suite,
    forecast_errors,
    run_spot_scenario,
)

JOB = PlannerJob(name="kmeans", input_gb=8.0)
NETWORK = NetworkConditions.from_mbit_s(16.0)
DEADLINE = 12.0


def paper_suite():
    return [CurrentPricePredictor(), WindowMaxPredictor(5)]


def backtest_all():
    traces = {
        "el": electricity_like_trace(days=30, seed=11),
        "aws": aws_like_trace(days=30, seed=11),
    }
    rows = {}
    for trace_name, trace in traces.items():
        for predictor in paper_suite() + extended_predictor_suite():
            errors = forecast_errors(predictor, trace, horizon_hours=12)
            rows[(trace_name, predictor.name)] = errors["mae"]
    return rows


def test_predictor_backtest(benchmark):
    rows = once(benchmark, backtest_all)

    table = [
        (trace, name, f"{mae:.4f}")
        for (trace, name), mae in sorted(rows.items())
    ]
    print_table(
        "Ablation: predictor forecast MAE by trace family ($/h)",
        table,
        ("trace", "predictor", "MAE"),
    )

    # Diurnal trace: predictors with a seasonal inductive bias extract
    # the cycle that p0 cannot see.
    assert rows[("el", "seasonal3")] < rows[("el", "p0")]
    # Patternless trace: the paper's window-max predictor is the one
    # that *hurts* there ("waiting in vain", Section 6.5) — it must be
    # the worst of the line-up, while mean-reversion-aware predictors
    # (AR(1), EWMA) can legitimately edge out p0 on forecast error.
    aws_errors = {
        name: mae for (trace, name), mae in rows.items() if trace == "aws"
    }
    assert aws_errors["p5"] == max(aws_errors.values())
    assert aws_errors["ar1"] <= aws_errors["p0"]


def deployment_comparison():
    trace = electricity_like_trace(days=14, seed=23)
    offsets = [24.0 * d + 6 for d in range(1, 9)]
    scenarios = {}
    for predictor in [CurrentPricePredictor(), SeasonalNaivePredictor()]:
        result = run_spot_scenario(
            JOB,
            trace,
            predictor,
            deadline_hours=DEADLINE,
            start_offsets=offsets,
            network=NETWORK,
        )
        scenarios[predictor.name] = result.summary
    return scenarios


def test_predictor_deployment_costs(benchmark):
    scenarios = once(benchmark, deployment_comparison)

    table = [
        (name, f"${s['average']:.2f}", f"${s['maximum']:.2f}", f"{s['stddev']:.2f}")
        for name, s in scenarios.items()
    ]
    print_table(
        "Ablation: realized job cost by predictor (diurnal trace)",
        table,
        ("predictor", "avg cost", "max cost", "std"),
    )

    # Both predictors must complete the runs at sane costs; the seasonal
    # predictor should be at least competitive on its home trace.
    p0 = scenarios["p0"]["average"]
    seasonal = scenarios["seasonal3"]["average"]
    assert seasonal <= p0 * 1.15
