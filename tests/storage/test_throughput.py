"""Tests for the Fig. 15 storage throughput experiment module."""

import pytest

from repro.storage.throughput import (
    measure_conductor,
    measure_hdfs,
    measure_s3,
    run_storage_throughput_experiment,
)


class TestIndividualMeasurements:
    def test_hdfs_near_paper_value(self):
        result = measure_hdfs(total_gb=4.0)
        assert result.throughput_mb_s == pytest.approx(21.0, rel=0.1)

    def test_conductor_quarter_slower_than_hdfs(self):
        hdfs = measure_hdfs(total_gb=4.0)
        conductor = measure_conductor(total_gb=4.0)
        ratio = conductor.throughput_mb_s / hdfs.throughput_mb_s
        assert 0.65 <= ratio <= 0.85

    def test_ssl_halves_s3_throughput(self):
        plain = measure_s3(total_gb=4.0, via_ssl=False)
        ssl = measure_s3(total_gb=4.0, via_ssl=True)
        assert ssl.throughput_mb_s < 0.6 * plain.throughput_mb_s

    def test_throughput_independent_of_volume(self):
        small = measure_hdfs(total_gb=2.0)
        large = measure_hdfs(total_gb=8.0)
        assert small.throughput_mb_s == pytest.approx(
            large.throughput_mb_s, rel=0.05
        )

    def test_replication_registered(self):
        # The conductor measurement acks at the primary but replicas land.
        from repro.sim import FluidNetwork, Simulation

        result = measure_conductor(total_gb=1.0)
        assert result.elapsed_s > 0

    def test_labels(self):
        results = run_storage_throughput_experiment(total_gb=2.0)
        assert [r.option for r in results] == [
            "Conductor",
            "HDFS",
            "S3 (Hadoop)",
            "S3 (s3cmd)",
        ]

    def test_experiment_ordering_matches_paper(self):
        results = {r.option: r.throughput_mb_s
                   for r in run_storage_throughput_experiment(total_gb=4.0)}
        assert results["HDFS"] > results["Conductor"]
        assert results["Conductor"] > results["S3 (Hadoop)"]
        assert results["S3 (s3cmd)"] > results["S3 (Hadoop)"]
