"""Unit tests for the namenode directory service."""

import pytest

from repro.storage import Block, BlockId, LocationRecord, Namenode, StorageError


@pytest.fixture
def namenode():
    nn = Namenode()
    for i in range(4):
        nn.register(Block(BlockId("/f", i), 64.0))
    return nn


REC_A = LocationRecord("local-disk", "n1")
REC_B = LocationRecord("local-disk", "n2")
REC_S3 = LocationRecord("s3")


class TestDirectory:
    def test_register_and_lookup(self, namenode):
        block = namenode.block(BlockId("/f", 0))
        assert block.size_mb == 64.0

    def test_double_registration_rejected(self, namenode):
        with pytest.raises(ValueError):
            namenode.register(Block(BlockId("/f", 0), 64.0))

    def test_unknown_block_raises(self, namenode):
        with pytest.raises(StorageError):
            namenode.block(BlockId("/nope", 0))
        with pytest.raises(StorageError):
            namenode.locations(BlockId("/nope", 0))

    def test_exists(self, namenode):
        assert namenode.exists(BlockId("/f", 1))
        assert not namenode.exists(BlockId("/g", 1))


class TestLocations:
    def test_add_and_list(self, namenode):
        bid = BlockId("/f", 0)
        namenode.add_location(bid, REC_A)
        namenode.add_location(bid, REC_S3)
        assert namenode.locations(bid) == [REC_A, REC_S3]

    def test_duplicate_location_ignored(self, namenode):
        bid = BlockId("/f", 0)
        namenode.add_location(bid, REC_A)
        namenode.add_location(bid, REC_A)
        assert namenode.replication_of(bid) == 1

    def test_remove_location(self, namenode):
        bid = BlockId("/f", 0)
        namenode.add_location(bid, REC_A)
        namenode.remove_location(bid, REC_A)
        assert namenode.locations(bid) == []

    def test_blocks_at_backend_and_node(self, namenode):
        namenode.add_location(BlockId("/f", 0), REC_A)
        namenode.add_location(BlockId("/f", 1), REC_B)
        namenode.add_location(BlockId("/f", 2), REC_S3)
        assert set(namenode.blocks_at("local-disk")) == {BlockId("/f", 0), BlockId("/f", 1)}
        assert namenode.blocks_at("local-disk", "n2") == [BlockId("/f", 1)]
        assert namenode.blocks_at("s3") == [BlockId("/f", 2)]


class TestNodeLoss:
    def test_drop_node_removes_locations(self, namenode):
        for i in range(3):
            namenode.add_location(BlockId("/f", i), REC_A)
        namenode.add_location(BlockId("/f", 0), REC_B)
        affected = namenode.drop_node("local-disk", "n1")
        assert len(affected) == 3
        # Block 0 survives on n2, blocks 1-2 are gone.
        assert namenode.replication_of(BlockId("/f", 0)) == 1
        # Blocks 1-2 lost their only replica; block 3 never had one.
        assert namenode.unavailable() == [
            BlockId("/f", 1), BlockId("/f", 2), BlockId("/f", 3),
        ]


class TestReplicationBookkeeping:
    def test_under_replicated(self, namenode):
        bid = BlockId("/f", 0)
        namenode.add_location(bid, REC_A)
        assert namenode.under_replicated(factor=2) == [bid]
        namenode.add_location(bid, REC_B)
        assert namenode.under_replicated(factor=2) == []

    def test_zero_replica_blocks_not_under_replicated(self, namenode):
        # Lost blocks are *unavailable*, not repairable by re-replication.
        assert namenode.under_replicated(factor=3) == []
        assert len(namenode.unavailable()) == 4


class TestPriorities:
    def test_priority_ordering(self, namenode):
        ids = [BlockId("/f", i) for i in range(3)]
        namenode.set_priority(ids[2], 10)
        namenode.set_priority(ids[0], 5)
        assert namenode.by_priority(ids) == [ids[2], ids[0], ids[1]]

    def test_default_priority_zero(self, namenode):
        assert namenode.priority_of(BlockId("/f", 0)) == 0
