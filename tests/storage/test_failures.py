"""Tests for storage failure injection."""

import pytest

from repro.sim.clock import Simulation
from repro.storage import (
    Block,
    BlockId,
    FailureInjector,
    LocationRecord,
    Namenode,
    unavailable_files,
)


@pytest.fixture
def namenode():
    node = Namenode()
    for index in range(4):
        block_id = BlockId("data", index)
        node.register(Block(block_id, size_mb=64.0))
        node.add_location(block_id, LocationRecord("local-disk", f"n{index % 2}"))
        node.add_location(block_id, LocationRecord("s3"))
    return node


@pytest.fixture
def injector(namenode):
    return FailureInjector(namenode)


class TestImperativeInjection:
    def test_lose_block_removes_all_replicas(self, namenode, injector):
        target = BlockId("data", 0)
        event = injector.lose_block(target, hour=1.5)
        assert namenode.locations(target) == []
        assert event.kind == "block-loss"
        assert event.blocks_lost == (target,)
        assert event.hour == 1.5

    def test_lose_replica_keeps_block_if_others_remain(self, namenode, injector):
        target = BlockId("data", 1)
        event = injector.lose_replica(target, "local-disk", "n1")
        assert len(namenode.locations(target)) == 1
        assert event.blocks_lost == ()

    def test_lose_last_replica_reports_block_lost(self, namenode, injector):
        target = BlockId("data", 1)
        injector.lose_replica(target, "local-disk", "n1")
        event = injector.lose_replica(target, "s3")
        assert event.blocks_lost == (target,)

    def test_fail_node_drops_everything_it_held(self, namenode, injector):
        event = injector.fail_node("local-disk", "n0")
        # Blocks 0 and 2 lived on n0 but still have the s3 replica.
        assert event.blocks_lost == ()
        assert all(
            record.node != "n0"
            for block_id in namenode.blocks()
            for record in namenode.locations(block_id)
        )

    def test_fail_node_after_s3_loss_kills_blocks(self, namenode, injector):
        for index in (0, 2):
            injector.lose_replica(BlockId("data", index), "s3")
        event = injector.fail_node("local-disk", "n0")
        assert set(event.blocks_lost) == {BlockId("data", 0), BlockId("data", 2)}
        assert unavailable_files(namenode) == {"data"}

    def test_log_accumulates(self, injector):
        injector.lose_block(BlockId("data", 0))
        injector.fail_node("local-disk", "n1")
        assert [e.kind for e in injector.log] == ["block-loss", "node-crash"]

    def test_listener_fires(self, injector):
        seen = []
        injector.on_failure(seen.append)
        injector.lose_block(BlockId("data", 3))
        assert len(seen) == 1
        assert seen[0].kind == "block-loss"


class TestScheduledInjection:
    def test_scheduled_node_failure_fires_at_time(self, namenode, injector):
        sim = Simulation()
        injector.schedule_node_failure(sim, 2.0, "local-disk", "n0")
        sim.run(until=1.0)
        assert injector.log == []
        sim.run(until=3.0)
        assert len(injector.log) == 1
        assert injector.log[0].hour == pytest.approx(2.0)

    def test_scheduled_block_loss(self, namenode, injector):
        sim = Simulation()
        target = BlockId("data", 2)
        injector.schedule_block_loss(sim, 0.5, target)
        sim.run_until_idle()
        assert namenode.locations(target) == []

    def test_random_losses_deterministic_under_seed(self, namenode):
        def run(seed):
            sim = Simulation()
            injector = FailureInjector(namenode)
            count = injector.arm_random_losses(
                sim, loss_per_block_hour=0.8, horizon_hours=5.0, rng=seed
            )
            return count

        assert run(3) == run(3)

    def test_zero_rate_arms_nothing(self, namenode, injector):
        sim = Simulation()
        assert (
            injector.arm_random_losses(sim, 0.0, horizon_hours=10.0, rng=1) == 0
        )

    def test_negative_rate_rejected(self, namenode, injector):
        sim = Simulation()
        with pytest.raises(ValueError):
            injector.arm_random_losses(sim, -0.1, horizon_hours=10.0)

    def test_backend_filter(self, namenode, injector):
        # Restrict losses to blocks with an s3 replica; after removing
        # s3 replicas nothing qualifies.
        for index in range(4):
            injector.lose_replica(BlockId("data", index), "s3")
        sim = Simulation()
        armed = injector.arm_random_losses(
            sim, loss_per_block_hour=10.0, horizon_hours=100.0, rng=0,
            backend="s3",
        )
        assert armed == 0

    def test_high_rate_arms_everything(self, namenode, injector):
        sim = Simulation()
        armed = injector.arm_random_losses(
            sim, loss_per_block_hour=50.0, horizon_hours=10.0, rng=2
        )
        assert armed == 4
