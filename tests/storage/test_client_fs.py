"""Integration tests for the storage client, filesystem and replication."""

import pytest

from repro.sim import FluidNetwork, Simulation, Topology
from repro.storage import (
    Block,
    BlockId,
    ConductorFileSystem,
    FileSystemError,
    LocalDiskBackend,
    LocationRecord,
    Namenode,
    ObjectStoreBackend,
    ReplicationManager,
    StorageClient,
    StorageError,
)


@pytest.fixture
def world():
    sim = Simulation()
    topo = Topology()
    topo.add_link("uplink", 2.0)
    topo.add_link("s3-gw", 20.0)
    for n in ("n1", "n2", "n3"):
        topo.add_link(f"nic-{n}", 50.0)
    for n in ("n1", "n2", "n3"):
        topo.add_route("client", n, ["uplink", f"nic-{n}"])
        topo.add_route(n, "s3", [f"nic-{n}", "s3-gw"])
        for m in ("n1", "n2", "n3"):
            if n != m:
                topo.add_route(n, m, [f"nic-{n}", f"nic-{m}"], symmetric=False)
    topo.add_route("client", "s3", ["uplink", "s3-gw"])
    network = FluidNetwork(sim, topo)
    namenode = Namenode()
    disk = LocalDiskBackend("local-disk")
    s3 = ObjectStoreBackend("s3", per_chunk_overhead_s=0.0)
    for n in ("n1", "n2", "n3"):
        disk.add_node(n)
    client = StorageClient(sim, network, namenode, {"local-disk": disk, "s3": s3})
    fs = ConductorFileSystem(namenode, client, chunk_mb=64.0)
    return sim, namenode, disk, s3, client, fs


class TestClient:
    def test_write_registers_location(self, world):
        sim, namenode, disk, _s3, client, _fs = world
        block = Block(BlockId("/f", 0), 64.0)
        done = []
        client.write(block, "client", LocationRecord("local-disk", "n1"),
                     lambda b: done.append(b))
        sim.run_until_idle()
        assert done
        assert disk.contains("n1", block.block_id)
        assert namenode.locations(block.block_id) == [LocationRecord("local-disk", "n1")]

    def test_upload_timing_is_bandwidth_bound(self, world):
        sim, namenode, _disk, _s3, client, _fs = world
        block = Block(BlockId("/f", 0), 64.0)
        client.write(block, "client", LocationRecord("local-disk", "n1"))
        sim.run_until_idle()
        assert sim.now == pytest.approx(32.0, abs=0.5)  # 64 MB at 2 MB/s

    def test_read_prefers_local_replica(self, world):
        sim, namenode, disk, _s3, client, _fs = world
        block = Block(BlockId("/f", 0), 64.0)
        namenode.register(block)
        disk.put("n1", block)
        namenode.add_location(block.block_id, LocationRecord("local-disk", "n1"))
        before = client.stats.local_fast_path_hits
        client.read(block.block_id, "n1", lambda b: None)
        sim.run_until_idle()
        assert client.stats.local_fast_path_hits == before + 1

    def test_remote_read_caches_locally(self, world):
        sim, namenode, disk, _s3, client, _fs = world
        block = Block(BlockId("/f", 0), 64.0)
        namenode.register(block)
        disk.put("n1", block)
        namenode.add_location(block.block_id, LocationRecord("local-disk", "n1"))
        client.read(block.block_id, "n2", lambda b: None)
        sim.run_until_idle()
        assert disk.contains("n2", block.block_id)  # cached copy installed

    def test_read_of_lost_block_raises(self, world):
        _sim, namenode, _disk, _s3, client, _fs = world
        block = Block(BlockId("/f", 0), 64.0)
        namenode.register(block)
        with pytest.raises(StorageError):
            client.read(block.block_id, "n1", lambda b: None)

    def test_local_write_then_background_replication(self, world):
        sim, namenode, disk, _s3, client, _fs = world
        block = Block(BlockId("/f", 0), 64.0)
        acks = []
        client.write_local_then_replicate(
            block,
            "n1",
            LocationRecord("local-disk", "n1"),
            [LocationRecord("local-disk", "n2"), LocationRecord("local-disk", "n3")],
            on_local_complete=lambda b: acks.append(sim.now),
        )
        sim.run_until_idle()
        # Local ack fires before the replicas finish.
        assert acks and acks[0] < sim.now
        assert namenode.replication_of(block.block_id) == 3


class TestFileSystem:
    def test_chunking(self, world):
        *_rest, fs = world
        inode = fs.create("/data", 200.0)
        assert len(inode.chunks) == 4  # 64+64+64+8
        sizes = [fs.namenode.block(b).size_mb for b in inode.chunks]
        assert sizes == pytest.approx([64.0, 64.0, 64.0, 8.0])

    def test_duplicate_create_rejected(self, world):
        *_rest, fs = world
        fs.create("/data", 10.0)
        with pytest.raises(FileSystemError):
            fs.create("/data", 10.0)

    def test_upload_and_locations(self, world):
        sim, namenode, _disk, _s3, _client, fs = world
        inode = fs.create("/data", 128.0)
        fs.upload("/data", "client", lambda i: LocationRecord("local-disk", f"n{i % 3 + 1}"))
        sim.run_until_idle()
        locations = fs.chunk_locations("/data")
        assert all(records for records in locations.values())

    def test_delete_removes_replicas(self, world):
        sim, namenode, disk, _s3, _client, fs = world
        fs.create("/data", 64.0)
        fs.upload("/data", "client", lambda i: LocationRecord("local-disk", "n1"))
        sim.run_until_idle()
        fs.delete("/data")
        assert disk.stored_mb() == 0.0
        assert not fs.exists("/data")

    def test_priorities_propagate(self, world):
        _sim, namenode, *_rest, fs = world
        inode = fs.create("/data", 128.0)
        fs.prioritize("/data", 7)
        assert all(namenode.priority_of(b) == 7 for b in inode.chunks)

    def test_zero_size_file(self, world):
        sim, *_rest, fs = world
        inode = fs.create("/empty", 0.0)
        done = []
        fs.upload("/empty", "client", lambda i: LocationRecord("s3"),
                  on_complete=lambda: done.append(True))
        sim.run_until_idle()
        assert done == [True]


class TestReplicationManager:
    def test_repair_restores_factor(self, world):
        sim, namenode, disk, _s3, client, fs = world
        manager = ReplicationManager(namenode, client, replication_factor=3)
        fs.create("/data", 64.0)
        fs.upload("/data", "client", lambda i: LocationRecord("local-disk", "n1"))
        sim.run_until_idle()
        started = manager.repair("local-disk")
        sim.run_until_idle()
        assert started == 2
        block = fs.inode("/data").chunks[0]
        assert namenode.replication_of(block) == 3

    def test_node_loss_then_repair(self, world):
        sim, namenode, disk, _s3, client, fs = world
        manager = ReplicationManager(namenode, client, replication_factor=2)
        fs.create("/data", 64.0)
        fs.upload("/data", "client", lambda i: LocationRecord("local-disk", "n1"))
        sim.run_until_idle()
        manager.repair("local-disk")
        sim.run_until_idle()
        # Kill a replica holder and repair again.
        namenode.drop_node("local-disk", "n1")
        disk.remove_node("n1")
        assert namenode.under_replicated(2)
        manager.repair("local-disk")
        sim.run_until_idle()
        assert not namenode.under_replicated(2)

    def test_migration_moves_and_drops_source(self, world):
        sim, namenode, disk, s3, client, fs = world
        manager = ReplicationManager(namenode, client)
        fs.create("/data", 64.0)
        fs.upload("/data", "client", lambda i: LocationRecord("local-disk", "n1"))
        sim.run_until_idle()
        block = fs.inode("/data").chunks[0]
        manager.migrate(block, LocationRecord("s3"))
        sim.run_until_idle()
        assert s3.contains("", block)
        assert not disk.contains("n1", block)
        assert namenode.locations(block) == [LocationRecord("s3")]

    def test_migrate_unavailable_block_rejected(self, world):
        _sim, namenode, *_rest = world
        _sim2, _nn, _disk, _s3, client, fs = world
        manager = ReplicationManager(namenode, client)
        inode = fs.create("/data", 64.0)
        with pytest.raises(ValueError):
            manager.migrate(inode.chunks[0], LocationRecord("s3"))
