"""Tests for unit conversions and seeded RNG derivation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.sim.rng import derive_seed, generator


class TestUnits:
    def test_paper_uplink_conversion(self):
        # The paper's 16 Mbit/s is exactly 2 MB/s (Section 6.1).
        assert units.mbit_s_to_mb_s(16.0) == pytest.approx(2.0)

    def test_two_mb_s_is_7_gb_per_hour(self):
        rate = units.mb_s_to_gb_h(2.0)
        assert rate == pytest.approx(7.03, abs=0.01)

    def test_s3_price_conversion_matches_fig3(self):
        # $0.15/GB-month -> the paper's cost_tstore value.
        assert units.per_gb_month_to_per_gb_hour(0.15) == pytest.approx(
            2.08333332e-4, rel=1e-6
        )

    @given(st.floats(0.001, 1e6))
    def test_rate_conversions_invert(self, mb_s):
        assert units.gb_h_to_mb_s(units.mb_s_to_gb_h(mb_s)) == pytest.approx(
            mb_s, rel=1e-9
        )

    @given(st.floats(0.001, 1e6))
    def test_size_conversions_invert(self, gb):
        assert units.mb_to_gb(units.gb_to_mb(gb)) == pytest.approx(gb, rel=1e-12)

    @given(st.floats(0.0, 1e5))
    def test_time_conversions_invert(self, hours):
        assert units.seconds_to_hours(units.hours_to_seconds(hours)) == pytest.approx(
            hours, abs=1e-9
        )


class TestRng:
    def test_derivation_is_stable(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_labels_separate_streams(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 1) != derive_seed(1, "a", 2)

    def test_root_seed_separates_streams(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_generator_reproducible(self):
        a = generator(7, "trace").normal(size=5)
        b = generator(7, "trace").normal(size=5)
        assert (a == b).all()
