"""Unit tests for the event queue and simulation clock."""

import math

import pytest

from repro.sim import EventQueue, Simulation, SimulationError


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(5.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        while (event := q.pop()) is not None:
            event.callback()
        assert order == ["a", "b"]

    def test_ties_resolve_by_priority_then_sequence(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("late"), priority=1)
        q.push(1.0, lambda: order.append("early"), priority=-1)
        q.push(1.0, lambda: order.append("mid"), priority=0)
        while (event := q.pop()) is not None:
            event.callback()
        assert order == ["early", "mid", "late"]

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        event = q.push(1.0, lambda: fired.append(1))
        event.cancel()
        assert q.pop() is None
        assert not fired

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e1.cancel()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e1.cancel()
        assert q.peek_time() == pytest.approx(2.0)

    def test_bool(self):
        q = EventQueue()
        assert not q
        event = q.push(1.0, lambda: None)
        assert q
        event.cancel()
        assert not q


class TestSimulation:
    def test_clock_advances_to_event_times(self):
        sim = Simulation()
        times = []
        sim.schedule(3.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [1.0, 3.0]

    def test_schedule_in_past_rejected(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulation(start_time=10.0)
        fired = []
        sim.schedule_at(15.0, lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert fired == [15.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulation(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_run_until_horizon_stops_early(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == pytest.approx(5.0)

    def test_events_can_schedule_events(self):
        sim = Simulation()
        trace = []

        def first():
            trace.append(("first", sim.now))
            sim.schedule(2.0, second)

        def second():
            trace.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run_until_idle()
        assert trace == [("first", 1.0), ("second", 3.0)]

    def test_callback_args(self):
        sim = Simulation()
        got = []
        sim.schedule(1.0, lambda a, b: got.append(a + b), 2, 3)
        sim.run_until_idle()
        assert got == [5]

    def test_runaway_guard(self):
        sim = Simulation()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_dispatched_counter(self):
        sim = Simulation()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run_until_idle()
        assert sim.events_dispatched == 5

    def test_reentrant_run_rejected(self):
        sim = Simulation()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError:
                errors.append(True)

        sim.schedule(1.0, reenter)
        sim.run_until_idle()
        assert errors == [True]
