"""Unit and property tests for the max-min fair fluid network."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    FluidNetwork,
    Link,
    RoutingError,
    Simulation,
    Topology,
    max_min_fair_rates,
)


@pytest.fixture
def star():
    """client --uplink--> {a, b} with per-node NICs."""
    topo = Topology()
    topo.add_link("uplink", 2.0)
    topo.add_link("nic-a", 100.0)
    topo.add_link("nic-b", 100.0)
    topo.add_route("client", "a", ["uplink", "nic-a"])
    topo.add_route("client", "b", ["uplink", "nic-b"])
    return topo


class TestTopology:
    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_link("l", 1.0)
        with pytest.raises(ValueError):
            topo.add_link("l", 2.0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            Link("bad", 0.0)

    def test_missing_route_raises(self, star):
        with pytest.raises(RoutingError):
            star.route("a", "nowhere")

    def test_symmetric_route_reversed(self, star):
        forward = star.route("client", "a")
        reverse = star.route("a", "client")
        assert [l.name for l in reverse] == [l.name for l in reversed(forward)]

    def test_self_route_empty_by_default(self, star):
        assert star.route("a", "a") == []

    def test_explicit_self_route(self):
        topo = Topology()
        topo.add_link("disk", 60.0)
        topo.add_route("n", "n", ["disk"], symmetric=False)
        assert [l.name for l in topo.route("n", "n")] == ["disk"]


class TestMaxMinFairness:
    def test_equal_split_on_shared_bottleneck(self, star):
        flows = [star.route("client", "a"), star.route("client", "b")]
        rates = max_min_fair_rates(flows)
        assert rates == pytest.approx([1.0, 1.0])

    def test_unshared_flows_get_full_capacity(self, star):
        rates = max_min_fair_rates([star.route("client", "a")])
        assert rates == pytest.approx([2.0])

    def test_empty_path_is_infinite(self):
        assert max_min_fair_rates([[]]) == [math.inf]

    def test_bottleneck_redistribution(self):
        # Two links: A (cap 10) shared by f1,f2; B (cap 2) also on f2's
        # path.  f2 is capped at 2 by B, so f1 should get 8, not 5.
        a, b = Link("A", 10.0), Link("B", 2.0)
        rates = max_min_fair_rates([[a], [a, b]])
        assert rates[1] == pytest.approx(2.0)
        assert rates[0] == pytest.approx(8.0)

    def test_capacity_override(self):
        link = Link("A", 10.0)
        rates = max_min_fair_rates([[link]], capacities={"A": 4.0})
        assert rates == pytest.approx([4.0])


@st.composite
def random_flow_sets(draw):
    num_links = draw(st.integers(1, 5))
    links = [
        Link(f"l{i}", draw(st.floats(0.5, 50.0, allow_nan=False)))
        for i in range(num_links)
    ]
    num_flows = draw(st.integers(1, 8))
    flows = []
    for _ in range(num_flows):
        indices = draw(
            st.lists(st.integers(0, num_links - 1), min_size=1, max_size=3, unique=True)
        )
        flows.append([links[i] for i in indices])
    return links, flows


class TestFairnessProperties:
    @given(random_flow_sets())
    @settings(max_examples=80, deadline=None)
    def test_no_link_oversubscribed(self, links_flows):
        links, flows = links_flows
        rates = max_min_fair_rates(flows)
        for link in links:
            load = sum(r for r, path in zip(rates, flows) if link in path)
            assert load <= link.capacity_mb_s + 1e-6

    @given(random_flow_sets())
    @settings(max_examples=80, deadline=None)
    def test_rates_positive_and_bottlenecked(self, links_flows):
        links, flows = links_flows
        rates = max_min_fair_rates(flows)
        for rate, path in zip(rates, flows):
            assert rate > 0
            # Every flow is limited by at least one saturated link.
            saturated = False
            for link in path:
                load = sum(r for r, p in zip(rates, flows) if link in p)
                if load >= link.capacity_mb_s - 1e-6:
                    saturated = True
            assert saturated

    @given(random_flow_sets())
    @settings(max_examples=50, deadline=None)
    def test_single_flow_per_link_gets_min_capacity(self, links_flows):
        _links, flows = links_flows
        rates = max_min_fair_rates([flows[0]])
        assert rates[0] == pytest.approx(
            min(l.capacity_mb_s for l in flows[0]), rel=1e-6
        )


class TestFluidNetwork:
    def test_two_flows_share_and_finish_together(self, star):
        sim = Simulation()
        net = FluidNetwork(sim, star)
        done = []
        net.start_flow("client", "a", 60.0, lambda f: done.append(("a", sim.now)))
        net.start_flow("client", "b", 60.0, lambda f: done.append(("b", sim.now)))
        sim.run_until_idle()
        assert done == [("a", 60.0), ("b", 60.0)]

    def test_rate_increases_after_completion(self, star):
        sim = Simulation()
        net = FluidNetwork(sim, star)
        done = {}
        net.start_flow("client", "a", 30.0, lambda f: done.update(a=sim.now))
        net.start_flow("client", "b", 90.0, lambda f: done.update(b=sim.now))
        sim.run_until_idle()
        # Shared at 1 MB/s until a finishes (30s), then b at 2 MB/s:
        # b has 60 MB left -> finishes at 30 + 60/2 = 60.
        assert done["a"] == pytest.approx(30.0)
        assert done["b"] == pytest.approx(60.0)

    def test_zero_size_flow_completes_immediately(self, star):
        sim = Simulation()
        net = FluidNetwork(sim, star)
        done = []
        net.start_flow("client", "a", 0.0, lambda f: done.append(sim.now))
        sim.run_until_idle()
        assert done == [0.0]

    def test_negative_size_rejected(self, star):
        net = FluidNetwork(Simulation(), star)
        with pytest.raises(ValueError):
            net.start_flow("client", "a", -1.0)

    def test_local_flow_instantaneous(self, star):
        sim = Simulation()
        net = FluidNetwork(sim, star)
        done = []
        net.start_flow("a", "a", 500.0, lambda f: done.append(sim.now))
        sim.run_until_idle()
        assert done == [0.0]

    def test_cancel_preserves_progress_and_skips_callback(self, star):
        sim = Simulation()
        net = FluidNetwork(sim, star)
        fired = []
        flow = net.start_flow("client", "a", 100.0, lambda f: fired.append(1))
        sim.run(until=10.0)
        net.cancel_flow(flow)
        sim.run_until_idle()
        assert not fired
        assert flow.remaining_mb == pytest.approx(80.0)  # 10s at 2 MB/s

    def test_utilization_tracks_bytes(self, star):
        sim = Simulation()
        net = FluidNetwork(sim, star)
        net.start_flow("client", "a", 20.0)
        sim.run_until_idle()
        assert net.utilization_mb()["uplink"] == pytest.approx(20.0)

    def test_completed_flow_count(self, star):
        sim = Simulation()
        net = FluidNetwork(sim, star)
        for _ in range(3):
            net.start_flow("client", "a", 1.0)
        sim.run_until_idle()
        assert net.completed_flows == 3

    def test_many_concurrent_flows_conserve_volume(self, star):
        sim = Simulation()
        net = FluidNetwork(sim, star)
        total = 0.0
        for i in range(20):
            size = 5.0 + i
            total += size
            net.start_flow("client", "a" if i % 2 else "b", size)
        sim.run_until_idle()
        assert net.utilization_mb()["uplink"] == pytest.approx(total)
        # Uplink at 2 MB/s is the bottleneck: elapsed = total / 2.
        assert sim.now == pytest.approx(total / 2.0)
