"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestPlan:
    def test_plan_prints_cost(self, capsys):
        assert main(["plan", "--input-gb", "8", "--deadline", "3"]) == 0
        out = capsys.readouterr().out
        assert "predicted cost" in out
        assert "$" in out

    def test_plan_hybrid(self, capsys):
        assert main(
            ["plan", "--input-gb", "8", "--deadline", "6", "--local-nodes", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "predicted cost" in out

    def test_infeasible_plan_fails_cleanly(self, capsys):
        assert main(["plan", "--input-gb", "64", "--deadline", "2"]) == 1
        assert "planning failed" in capsys.readouterr().err

    def test_plan_from_xml_catalog(self, tmp_path, capsys):
        from repro.cloud import public_cloud, save_services

        path = tmp_path / "services.xml"
        save_services(public_cloud(), str(path))
        assert main(
            ["plan", "--input-gb", "8", "--deadline", "3",
             "--services-xml", str(path)]
        ) == 0


class TestDeploy:
    def test_deploy_conductor(self, capsys):
        assert main(
            ["deploy", "--strategy", "conductor", "--input-gb", "4",
             "--deadline", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Conductor" in out

    def test_deploy_baseline(self, capsys):
        assert main(
            ["deploy", "--strategy", "hadoop-direct", "--input-gb", "4",
             "--deadline", "2", "--nodes", "8"]
        ) == 0
        assert "Hadoop direct" in capsys.readouterr().out


class TestServices:
    def test_emit(self, capsys):
        assert main(["services", "--emit"]) == 0
        assert "<resources>" in capsys.readouterr().out

    def test_validate_good(self, tmp_path, capsys):
        from repro.cloud import public_cloud, save_services

        path = tmp_path / "ok.xml"
        save_services(public_cloud(), str(path))
        assert main(["services", "--validate", str(path)]) == 0
        assert "ok: 3 services" in capsys.readouterr().out

    def test_validate_bad(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<resources><resource/></resources>")
        assert main(["services", "--validate", str(path)]) == 1

    def test_no_action_is_usage_error(self, capsys):
        assert main(["services"]) == 2


class TestSpot:
    def test_spot_scenario_runs(self, capsys):
        assert main(
            ["spot", "--trace", "aws", "--predictor", "p0", "--days", "3",
             "--input-gb", "8", "--deadline", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "average $" in out

    def test_unknown_predictor(self, capsys):
        assert main(["spot", "--predictor", "oracle"]) == 2


PIG_SCRIPT = (
    "a = LOAD 'clicks' AS (url:chararray, site:chararray, ms:int);\n"
    "g = GROUP a BY site;\n"
    "c = FOREACH g GENERATE group, COUNT(a) AS hits;\n"
    "STORE c INTO 'out';\n"
)


class TestPig:
    def test_compile_only(self, tmp_path, capsys):
        path = tmp_path / "job.pig"
        path.write_text(PIG_SCRIPT)
        assert main(
            ["pig", str(path), "--compile-only", "--input-gb", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "stage 0" in out
        assert "pipeline depth: 1" in out
        assert "map_ratio" in out

    def test_full_pipeline_plan(self, tmp_path, capsys):
        path = tmp_path / "job.pig"
        path.write_text(PIG_SCRIPT)
        assert main(
            ["pig", str(path), "--input-gb", "4", "--deadline", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "expected total" in out

    def test_missing_script(self, capsys):
        assert main(["pig", "/nonexistent/job.pig"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_syntax_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.pig"
        path.write_text("a = LOAD 'x' AS (;\n")
        assert main(["pig", str(path)]) == 1
        assert "compile error" in capsys.readouterr().err

    def test_semantic_error_reported(self, tmp_path, capsys):
        path = tmp_path / "dead.pig"
        path.write_text("a = LOAD 'x' AS (v:int);\n")  # no STORE
        assert main(["pig", str(path)]) == 1
        assert "compile error" in capsys.readouterr().err


SERVICE_ARGS = ["--pool", "inline", "--workers", "1"]


class TestSubmit:
    def test_submit_repeat_shows_cache(self, capsys):
        assert main(
            ["submit", "--input-gb", "4", "--deadline", "3", "--repeat", "2",
             *SERVICE_ARGS]
        ) == 0
        out = capsys.readouterr().out
        assert "via solver" in out
        assert "via cache" in out
        assert "predicted cost" in out

    def test_submit_infeasible_fails(self, capsys):
        assert main(
            ["submit", "--input-gb", "64", "--deadline", "2", *SERVICE_ARGS]
        ) == 1
        err = capsys.readouterr().err
        assert "planning failed" in err
        assert "infeasible" in err

    def test_submit_json_emits_wire_responses(self, capsys):
        import json

        assert main(
            ["submit", "--input-gb", "4", "--deadline", "3", "--repeat", "2",
             "--json", *SERVICE_ARGS]
        ) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert [l["kind"] for l in lines] == ["plan_response"] * 2
        assert lines[0]["cached"] is False and lines[1]["cached"] is True
        assert lines[0]["predicted_cost"] > 0


class TestLoadgen:
    def test_small_workload_reports_metrics(self, capsys):
        assert main(
            ["loadgen", "--tenants", "2", "--requests", "6", "--seed", "1",
             *SERVICE_ARGS]
        ) == 0
        out = capsys.readouterr().out
        assert "requests/s" in out
        assert "hit rate" in out
        assert "p99" in out


def _request_line(tenant="acme", request_id="", **job) -> str:
    import json

    payload = {
        "schema_version": 1,
        "kind": "plan_request",
        "tenant": tenant,
        "job": job,
    }
    if request_id:
        payload["request_id"] = request_id
    return json.dumps(payload)


class TestServe:
    def test_serve_requests_file(self, tmp_path, capsys):
        import json

        job = {"input_gb": 4, "goal": {"deadline_hours": 3}}
        path = tmp_path / "requests.jsonl"
        path.write_text(
            _request_line(request_id="a-1", **job) + "\n"
            "# a comment line\n"
            + _request_line(request_id="a-2", **job) + "\n"
        )
        assert main(
            ["serve", "--requests-file", str(path), *SERVICE_ARGS]
        ) == 0
        captured = capsys.readouterr()
        lines = [json.loads(l) for l in captured.out.splitlines()
                 if l.startswith("{")]
        assert lines[0]["kind"] == "hello"
        assert lines[0]["schema_version"] == 1
        assert lines[0]["version"]
        responses = [l for l in lines if l["kind"] == "plan_response"]
        assert len(responses) == 2
        assert responses[0]["cached"] is False
        assert responses[1]["cached"] is True
        assert [r["request_id"] for r in responses] == ["a-1", "a-2"]
        assert all(r["status"] == "completed" for r in responses)
        assert "hit rate" in captured.err

    def test_serve_failed_stream_is_structured(self, tmp_path, capsys):
        import json

        path = tmp_path / "requests.jsonl"
        path.write_text(
            _request_line(input_gb=64, goal={"deadline_hours": 2}) + "\n"
        )
        assert main(
            ["serve", "--requests-file", str(path), *SERVICE_ARGS]
        ) == 1
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        response = next(l for l in lines if l["kind"] == "plan_response")
        assert response["status"] == "failed"
        assert response["error"]["code"] == "infeasible"

    def test_serve_unknown_version_yields_bad_schema(self, tmp_path, capsys):
        """An unknown schema_version must come back as a structured
        error line, not a traceback."""
        import json

        path = tmp_path / "requests.jsonl"
        path.write_text(
            '{"schema_version": 99, "kind": "plan_request", "job": {}}\n'
        )
        assert main(["serve", "--requests-file", str(path), *SERVICE_ARGS]) == 1
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        error = next(l for l in lines if l["kind"] == "error")
        assert error["code"] == "bad_schema"
        assert "schema_version" in error["message"]

    def test_serve_bad_line_fails(self, tmp_path, capsys):
        import json

        path = tmp_path / "requests.jsonl"
        path.write_text("not json\n")
        assert main(["serve", "--requests-file", str(path), *SERVICE_ARGS]) == 1
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        error = next(l for l in lines if l["kind"] == "error")
        assert error["code"] == "bad_schema"

    def test_serve_wrong_kind_rejected(self, tmp_path, capsys):
        import json

        path = tmp_path / "requests.jsonl"
        path.write_text('{"schema_version": 1, "kind": "hello"}\n')
        assert main(["serve", "--requests-file", str(path), *SERVICE_ARGS]) == 1
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        error = next(l for l in lines if l["kind"] == "error")
        assert error["code"] == "bad_schema"
        assert "plan_request" in error["message"]

    def test_serve_missing_file(self, capsys):
        assert main(
            ["serve", "--requests-file", "/nonexistent.jsonl", *SERVICE_ARGS]
        ) == 1
        assert "cannot read" in capsys.readouterr().err


class TestVersion:
    def test_version_flag(self, capsys):
        import pytest as _pytest

        with _pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "schema v1" in out


class TestDeployStream:
    def test_stream_emits_versioned_events(self, capsys):
        import json

        assert main(
            ["deploy", "--stream", "--input-gb", "4", "--deadline", "3"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        events = [json.loads(l) for l in lines if l.startswith("{")]
        assert events
        assert all(e["kind"] == "deploy_event" for e in events)
        assert all(e["schema_version"] == 1 for e in events)
        assert "deployed:" in lines[-1]

    def test_stream_rejects_baseline_strategy(self, capsys):
        assert main(
            ["deploy", "--stream", "--strategy", "hadoop-s3",
             "--input-gb", "4", "--deadline", "3"]
        ) == 2
        assert "cannot be combined" in capsys.readouterr().err


class TestExport:
    def test_export_lp(self, tmp_path, capsys):
        path = tmp_path / "model.lp"
        assert main(
            ["export", str(path), "--input-gb", "4", "--deadline", "3"]
        ) == 0
        text = path.read_text()
        assert text.startswith("\\ Problem:")
        assert "Subject To" in text
        assert "wrote" in capsys.readouterr().out

    def test_export_mps(self, tmp_path):
        path = tmp_path / "model.mps"
        assert main(
            ["export", str(path), "--input-gb", "4", "--deadline", "3"]
        ) == 0
        assert path.read_text().startswith("NAME")

    def test_bad_extension(self, tmp_path, capsys):
        assert main(
            ["export", str(tmp_path / "model.txt"), "--deadline", "3"]
        ) == 2


class TestFleet:
    def test_fleet_streams_versioned_events(self, capsys):
        import json

        assert main(
            ["fleet", "--deployments", "2", "--input-gb", "2",
             "--deadline", "8", "--days", "5", "--predictor", "p0"]
        ) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines()]
        # Like serve, the stream opens with a versioned hello preamble.
        assert lines[0]["kind"] == "hello"
        events = lines[1:]
        assert events
        assert all(e["kind"] == "deploy_event" for e in events)
        assert all(e["schema_version"] == 1 for e in events)
        # Interval events omit the additive fields (pre-fleet readers
        # reject unknown keys); replan events must carry them.
        assert all(
            e.get("event", "interval") in ("interval", "replan")
            for e in events
        )
        assert {e["tenant"] for e in events} == {"tenant-1", "tenant-2"}
        assert "fleet (event): 2 deployments" in captured.err

    def test_fleet_interval_mode_and_budget(self, capsys):
        assert main(
            ["fleet", "--deployments", "2", "--input-gb", "2",
             "--deadline", "8", "--days", "5", "--predictor", "p0",
             "--mode", "interval", "--replan-budget", "0"]
        ) == 0
        assert "fleet (interval)" in capsys.readouterr().err

    def test_fleet_rejects_bad_arguments(self, capsys):
        assert main(["fleet", "--deployments", "0"]) == 2
        assert "--deployments" in capsys.readouterr().err
        assert main(["fleet", "--predictor", "psychic"]) == 2
        assert "unknown predictor" in capsys.readouterr().err
        assert main(["fleet", "--failure-rate", "1.0"]) == 2
        assert "--failure-rate" in capsys.readouterr().err
        assert main(["fleet", "--failure-rate", "-0.1"]) == 2
        assert "--failure-rate" in capsys.readouterr().err


class TestTraceLogging:
    """The event-sourced trace pipeline end to end, through the CLI."""

    FLEET_ARGS = ["fleet", "--deployments", "2", "--input-gb", "2",
                  "--deadline", "8", "--days", "5", "--predictor", "p0"]

    def fleet_log(self, tmp_path, capsys, extra=()):
        log = tmp_path / "fleet.jsonl"
        assert main(self.FLEET_ARGS + ["--trace-log", str(log), *extra]) == 0
        return log, capsys.readouterr()

    def test_fleet_writes_a_replayable_log(self, tmp_path, capsys):
        import json

        log, captured = self.fleet_log(tmp_path, capsys)
        # Streaming output is unchanged by tracing: hello, then events.
        assert json.loads(captured.out.splitlines()[0])["kind"] == "hello"
        kinds = [
            json.loads(line)["kind"] for line in log.read_text().splitlines()
        ]
        assert kinds[0] == "trace_hello"
        assert kinds[1] == "run_start"
        assert kinds[-1] == "run_end"
        assert "interval" in kinds

    def test_replay_verify_round_trip(self, tmp_path, capsys):
        log, _ = self.fleet_log(tmp_path, capsys)
        assert main(["replay", str(log), "--verify"]) == 0
        assert "verified: streams identical" in capsys.readouterr().out

    def test_replay_verify_flags_tampering(self, tmp_path, capsys):
        import json

        log, _ = self.fleet_log(tmp_path, capsys)
        lines = log.read_text().splitlines()
        index = next(
            i for i, line in enumerate(lines)
            if json.loads(line)["kind"] == "interval"
        )
        record = json.loads(lines[index])
        record["payload"]["cost"] += 1.0
        lines[index] = json.dumps(record, sort_keys=True)
        log.write_text("\n".join(lines) + "\n")
        assert main(["replay", str(log), "--verify"]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_replay_resume_finishes_a_truncated_log(self, tmp_path, capsys):
        log, _ = self.fleet_log(tmp_path, capsys)
        lines = log.read_text().splitlines()
        log.write_text("\n".join(lines[: 2 * len(lines) // 3]) + "\n")
        assert main(["replay", str(log), "--resume"]) == 0
        assert "fleet (event): 2 deployments" in capsys.readouterr().out

    def test_replay_timeline_and_mermaid(self, tmp_path, capsys):
        log, _ = self.fleet_log(tmp_path, capsys)
        chart = tmp_path / "run.mmd"
        assert main(["replay", str(log), "--mermaid", str(chart)]) == 0
        out = capsys.readouterr().out
        assert "trace " in out and "records" in out.splitlines()[0]
        assert chart.read_text().startswith("gantt")

    def test_replay_rejects_a_bad_log(self, tmp_path, capsys):
        log = tmp_path / "bad.jsonl"
        log.write_text("{not json\n")
        assert main(["replay", str(log)]) == 2
        assert "bad trace log" in capsys.readouterr().err
        assert main(["replay", str(tmp_path / "missing.jsonl")]) == 2
        assert "bad trace log" in capsys.readouterr().err

    def test_trace_summarize_emits_the_snapshot_format(
        self, tmp_path, capsys
    ):
        import json

        log, _ = self.fleet_log(tmp_path, capsys)
        assert main(["trace", "summarize", str(log)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {"counters", "gauges", "series"}
        assert snapshot["counters"]["records.trace_hello"] == 1
        assert snapshot["gauges"]["run.completed"] == 2.0

    def test_fleet_metrics_json(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        self.fleet_log(tmp_path, capsys, ["--metrics-json", str(metrics)])
        snapshot = json.loads(metrics.read_text())
        assert set(snapshot) == {"counters", "gauges", "series"}
        assert "fleet.solve" in snapshot["series"]

    def test_deploy_stream_writes_a_log(self, tmp_path, capsys):
        import json

        log = tmp_path / "deploy.jsonl"
        assert main(
            ["deploy", "--stream", "--input-gb", "4", "--deadline", "3",
             "--trace-log", str(log)]
        ) == 0
        capsys.readouterr()
        kinds = [
            json.loads(line)["kind"] for line in log.read_text().splitlines()
        ]
        assert "snapshot" in kinds and kinds[-1] == "run_end"
        assert main(["replay", str(log), "--verify"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_deploy_trace_log_requires_stream(self, capsys):
        assert main(
            ["deploy", "--input-gb", "4", "--deadline", "3",
             "--trace-log", "x.jsonl"]
        ) == 2
        assert "--trace-log requires --stream" in capsys.readouterr().err
