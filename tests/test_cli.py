"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestPlan:
    def test_plan_prints_cost(self, capsys):
        assert main(["plan", "--input-gb", "8", "--deadline", "3"]) == 0
        out = capsys.readouterr().out
        assert "predicted cost" in out
        assert "$" in out

    def test_plan_hybrid(self, capsys):
        assert main(
            ["plan", "--input-gb", "8", "--deadline", "6", "--local-nodes", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "predicted cost" in out

    def test_infeasible_plan_fails_cleanly(self, capsys):
        assert main(["plan", "--input-gb", "64", "--deadline", "2"]) == 1
        assert "planning failed" in capsys.readouterr().err

    def test_plan_from_xml_catalog(self, tmp_path, capsys):
        from repro.cloud import public_cloud, save_services

        path = tmp_path / "services.xml"
        save_services(public_cloud(), str(path))
        assert main(
            ["plan", "--input-gb", "8", "--deadline", "3",
             "--services-xml", str(path)]
        ) == 0


class TestDeploy:
    def test_deploy_conductor(self, capsys):
        assert main(
            ["deploy", "--strategy", "conductor", "--input-gb", "4",
             "--deadline", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Conductor" in out

    def test_deploy_baseline(self, capsys):
        assert main(
            ["deploy", "--strategy", "hadoop-direct", "--input-gb", "4",
             "--deadline", "2", "--nodes", "8"]
        ) == 0
        assert "Hadoop direct" in capsys.readouterr().out


class TestServices:
    def test_emit(self, capsys):
        assert main(["services", "--emit"]) == 0
        assert "<resources>" in capsys.readouterr().out

    def test_validate_good(self, tmp_path, capsys):
        from repro.cloud import public_cloud, save_services

        path = tmp_path / "ok.xml"
        save_services(public_cloud(), str(path))
        assert main(["services", "--validate", str(path)]) == 0
        assert "ok: 3 services" in capsys.readouterr().out

    def test_validate_bad(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<resources><resource/></resources>")
        assert main(["services", "--validate", str(path)]) == 1

    def test_no_action_is_usage_error(self, capsys):
        assert main(["services"]) == 2


class TestSpot:
    def test_spot_scenario_runs(self, capsys):
        assert main(
            ["spot", "--trace", "aws", "--predictor", "p0", "--days", "3",
             "--input-gb", "8", "--deadline", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "average $" in out

    def test_unknown_predictor(self, capsys):
        assert main(["spot", "--predictor", "oracle"]) == 2


PIG_SCRIPT = (
    "a = LOAD 'clicks' AS (url:chararray, site:chararray, ms:int);\n"
    "g = GROUP a BY site;\n"
    "c = FOREACH g GENERATE group, COUNT(a) AS hits;\n"
    "STORE c INTO 'out';\n"
)


class TestPig:
    def test_compile_only(self, tmp_path, capsys):
        path = tmp_path / "job.pig"
        path.write_text(PIG_SCRIPT)
        assert main(
            ["pig", str(path), "--compile-only", "--input-gb", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "stage 0" in out
        assert "pipeline depth: 1" in out
        assert "map_ratio" in out

    def test_full_pipeline_plan(self, tmp_path, capsys):
        path = tmp_path / "job.pig"
        path.write_text(PIG_SCRIPT)
        assert main(
            ["pig", str(path), "--input-gb", "4", "--deadline", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "expected total" in out

    def test_missing_script(self, capsys):
        assert main(["pig", "/nonexistent/job.pig"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_syntax_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.pig"
        path.write_text("a = LOAD 'x' AS (;\n")
        assert main(["pig", str(path)]) == 1
        assert "compile error" in capsys.readouterr().err

    def test_semantic_error_reported(self, tmp_path, capsys):
        path = tmp_path / "dead.pig"
        path.write_text("a = LOAD 'x' AS (v:int);\n")  # no STORE
        assert main(["pig", str(path)]) == 1
        assert "compile error" in capsys.readouterr().err


SERVICE_ARGS = ["--pool", "inline", "--workers", "1"]


class TestSubmit:
    def test_submit_repeat_shows_cache(self, capsys):
        assert main(
            ["submit", "--input-gb", "4", "--deadline", "3", "--repeat", "2",
             *SERVICE_ARGS]
        ) == 0
        out = capsys.readouterr().out
        assert "via solver" in out
        assert "via cache" in out
        assert "predicted cost" in out

    def test_submit_infeasible_fails(self, capsys):
        assert main(
            ["submit", "--input-gb", "64", "--deadline", "2", *SERVICE_ARGS]
        ) == 1
        assert "planning failed" in capsys.readouterr().err


class TestLoadgen:
    def test_small_workload_reports_metrics(self, capsys):
        assert main(
            ["loadgen", "--tenants", "2", "--requests", "6", "--seed", "1",
             *SERVICE_ARGS]
        ) == 0
        out = capsys.readouterr().out
        assert "requests/s" in out
        assert "hit rate" in out
        assert "p99" in out


class TestServe:
    def test_serve_requests_file(self, tmp_path, capsys):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            '{"tenant": "acme", "scenario": "quickstart", '
            '"input_gb": 4, "deadline": 3}\n'
            "# a comment line\n"
            '{"tenant": "acme", "scenario": "quickstart", '
            '"input_gb": 4, "deadline": 3}\n'
        )
        assert main(
            ["serve", "--requests-file", str(path), *SERVICE_ARGS]
        ) == 0
        captured = capsys.readouterr()
        lines = [l for l in captured.out.splitlines() if l.startswith("{")]
        assert len(lines) == 2
        assert '"cached": false' in lines[0]
        assert '"cached": true' in lines[1]
        assert "hit rate" in captured.err

    def test_serve_failed_stream_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            '{"tenant": "acme", "scenario": "quickstart", '
            '"input_gb": 64, "deadline": 2}\n'
        )
        assert main(
            ["serve", "--requests-file", str(path), *SERVICE_ARGS]
        ) == 1
        out = capsys.readouterr().out
        assert '"status": "failed"' in out

    def test_serve_bad_line_fails(self, tmp_path, capsys):
        path = tmp_path / "requests.jsonl"
        path.write_text("not json\n")
        assert main(["serve", "--requests-file", str(path), *SERVICE_ARGS]) == 1
        assert "bad request" in capsys.readouterr().err

    def test_serve_missing_file(self, capsys):
        assert main(
            ["serve", "--requests-file", "/nonexistent.jsonl", *SERVICE_ARGS]
        ) == 1
        assert "cannot read" in capsys.readouterr().err


class TestExport:
    def test_export_lp(self, tmp_path, capsys):
        path = tmp_path / "model.lp"
        assert main(
            ["export", str(path), "--input-gb", "4", "--deadline", "3"]
        ) == 0
        text = path.read_text()
        assert text.startswith("\\ Problem:")
        assert "Subject To" in text
        assert "wrote" in capsys.readouterr().out

    def test_export_mps(self, tmp_path):
        path = tmp_path / "model.mps"
        assert main(
            ["export", str(path), "--input-gb", "4", "--deadline", "3"]
        ) == 0
        assert path.read_text().startswith("NAME")

    def test_bad_extension(self, tmp_path, capsys):
        assert main(
            ["export", str(tmp_path / "model.txt"), "--deadline", "3"]
        ) == 2
