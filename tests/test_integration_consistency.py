"""Cross-substrate consistency: the fluid and discrete views must agree.

The planner's fluid model, the controller's fluid executor, and the
discrete-event MapReduce engine all describe the same computation; these
tests pin down that their answers stay within engineering tolerance of
one another — the property that makes plan-driven deployment meaningful.
"""

import pytest

from repro.cloud import public_cloud
from repro.core import (
    DeploymentScenario,
    Goal,
    NetworkConditions,
    PlannerJob,
    plan_job,
    run_conductor,
    run_hadoop_direct,
)
from repro.core.conditions import ActualConditions
from repro.core.controller import JobController

NET = NetworkConditions.from_mbit_s(16.0)


@pytest.fixture(scope="module")
def small():
    return dict(input_gb=8.0, deadline=3.0)


class TestFluidVsDiscrete:
    def test_controller_and_deployment_costs_agree(self, small):
        job = PlannerJob(name="k", input_gb=small["input_gb"])
        controller = JobController(
            job, public_cloud(), Goal.min_cost(deadline_hours=small["deadline"]),
            network=NET,
        )
        fluid = controller.run(ActualConditions.as_predicted())
        discrete = run_conductor(
            DeploymentScenario(
                input_gb=small["input_gb"], deadline_hours=small["deadline"]
            )
        )
        # The discrete run pays real-world overheads (boot, waves,
        # stragglers) the fluid run does not; they must stay within ~40%.
        assert fluid.completed and discrete.task_series[-1][1] > 0
        assert discrete.total_cost <= fluid.total_cost * 1.4 + 0.5
        assert discrete.total_cost >= fluid.total_cost * 0.7 - 0.5

    def test_plan_predicts_deployment_runtime(self, small):
        plan = plan_job(
            PlannerJob(name="k", input_gb=small["input_gb"]),
            public_cloud(),
            Goal.min_cost(deadline_hours=small["deadline"]),
            network=NET,
        )
        discrete = run_hadoop_direct(
            DeploymentScenario(
                input_gb=small["input_gb"], deadline_hours=small["deadline"]
            ),
            nodes=max(8, plan.peak_nodes()),
        )
        # Both are bounded below by the uplink; the discrete run may not
        # beat the fluid bound by more than noise.
        upload_hours = small["input_gb"] / NET.uplink_gb_per_hour
        assert discrete.runtime_s / 3600 >= upload_hours * 0.95

    def test_billing_identities(self, small):
        """Every strategy's ledger equals its Fig. 5 breakdown sum."""
        scenario = DeploymentScenario(
            input_gb=small["input_gb"], deadline_hours=small["deadline"]
        )
        for result in (run_conductor(scenario), run_hadoop_direct(scenario, nodes=8)):
            assert result.total_cost == pytest.approx(
                sum(result.cost_breakdown().values()), abs=1e-9
            )
            assert result.total_cost == pytest.approx(result.ledger.total())
