"""The docs tree stays consistent (tools/check_docs.py, also a CI job)."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
CHECKER = ROOT / "tools" / "check_docs.py"


def load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_tree_exists():
    assert (ROOT / "docs" / "architecture.md").exists()
    assert (ROOT / "docs" / "adaptation.md").exists()


def test_all_internal_links_and_bench_references_resolve():
    checker = load_checker()
    problems = [p for f in checker.doc_files() for p in checker.check_file(f)]
    assert problems == []


def test_checker_flags_broken_references(tmp_path):
    checker = load_checker()
    bad = tmp_path / "bad.md"
    bad.write_text(
        "[missing](./nope.md) and benchmarks/bench_fig99_missing.py\n"
        "[external is fine](https://example.com/x.md)\n",
        encoding="utf-8",
    )
    problems = checker.check_file(bad)
    assert len(problems) == 2
    assert any("broken link" in p for p in problems)
    assert any("missing benchmark" in p for p in problems)


def test_checker_cli_exit_status():
    result = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    assert "docs ok" in result.stdout
