"""Direct-interpretation vs staged-MapReduce equivalence tests.

The compiler's correctness property: for any plan, executing the
compiled stages as map/shuffle/reduce passes yields the same bag of
rows per STORE as interpreting the logical plan directly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pig import (
    canonical,
    compile_script,
    evaluate_logical,
    run_pipeline_local,
)


def assert_equivalent(script: str, inputs: dict) -> dict:
    pipeline = compile_script(script)
    direct = evaluate_logical(pipeline.plan, inputs)
    staged = run_pipeline_local(pipeline, inputs)
    assert set(direct) == set(staged)
    for path in direct:
        assert canonical(direct[path]) == canonical(staged[path]), path
    return direct


class TestFixedScripts:
    def test_filter_foreach(self):
        out = assert_equivalent(
            "a = LOAD 'in' AS (x:int, y:int);\n"
            "b = FILTER a BY x > 1;\n"
            "c = FOREACH b GENERATE x + y AS s, x * y AS p;\n"
            "STORE c INTO 'out';",
            {"in": [(1, 10), (2, 20), (3, 30)]},
        )
        assert canonical(out["out"]) == [(22, 40), (33, 90)]

    def test_group_count_sum(self):
        out = assert_equivalent(
            "a = LOAD 'in' AS (k:chararray, v:int);\n"
            "g = GROUP a BY k;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n, SUM(a.v) AS t;\n"
            "STORE c INTO 'out';",
            {"in": [("a", 1), ("b", 2), ("a", 3)]},
        )
        assert canonical(out["out"]) == [("a", 2, 4), ("b", 1, 2)]

    def test_join_inner_semantics(self):
        assert_equivalent(
            "u = LOAD 'u' AS (id:int, n:chararray);\n"
            "v = LOAD 'v' AS (id:int, w:int);\n"
            "j = JOIN u BY id, v BY id;\n"
            "STORE j INTO 'out';",
            {
                "u": [(1, "a"), (2, "b"), (3, "c")],
                "v": [(1, 10), (1, 11), (9, 90)],
            },
        )

    def test_join_null_keys_never_match(self):
        out = assert_equivalent(
            "u = LOAD 'u' AS (id:int);\n"
            "v = LOAD 'v' AS (id:int);\n"
            "j = JOIN u BY id, v BY id;\n"
            "STORE j INTO 'out';",
            {"u": [(None,), (1,)], "v": [(None,), (1,)]},
        )
        assert out["out"] == [(1, 1)]

    def test_order_with_nulls_first(self):
        out = assert_equivalent(
            "a = LOAD 'in' AS (x:int);\n"
            "o = ORDER a BY x;\n"
            "STORE o INTO 'out';",
            {"in": [(3,), (None,), (1,)]},
        )
        assert out["out"] == [(None,), (1,), (3,)]

    def test_order_desc(self):
        out = assert_equivalent(
            "a = LOAD 'in' AS (x:int);\n"
            "o = ORDER a BY x DESC;\n"
            "STORE o INTO 'out';",
            {"in": [(3,), (1,), (2,)]},
        )
        assert out["out"] == [(3,), (2,), (1,)]

    def test_distinct(self):
        out = assert_equivalent(
            "a = LOAD 'in' AS (x:int, y:int);\n"
            "d = DISTINCT a;\n"
            "STORE d INTO 'out';",
            {"in": [(1, 2), (1, 2), (3, 4)]},
        )
        assert canonical(out["out"]) == [(1, 2), (3, 4)]

    def test_limit(self):
        out = assert_equivalent(
            "a = LOAD 'in' AS (x:int);\n"
            "l = LIMIT a 2;\n"
            "STORE l INTO 'out';",
            {"in": [(5,), (3,), (4,)]},
        )
        assert len(out["out"]) == 2

    def test_union_then_group(self):
        assert_equivalent(
            "a = LOAD 'a' AS (w:chararray);\n"
            "b = LOAD 'b' AS (w:chararray);\n"
            "u = UNION a, b;\n"
            "g = GROUP u BY w;\n"
            "c = FOREACH g GENERATE group, COUNT(u) AS n;\n"
            "STORE c INTO 'out';",
            {"a": [("x",), ("y",)], "b": [("x",), ("z",)]},
        )

    def test_flatten_ungroups(self):
        out = assert_equivalent(
            "a = LOAD 'in' AS (k:chararray, v:int);\n"
            "g = GROUP a BY k;\n"
            "f = FOREACH g GENERATE group, FLATTEN(a);\n"
            "STORE f INTO 'out';",
            {"in": [("a", 1), ("a", 2), ("b", 3)]},
        )
        # group key + original row columns
        assert canonical(out["out"]) == [
            ("a", "a", 1),
            ("a", "a", 2),
            ("b", "b", 3),
        ]

    def test_fanout_two_stores(self):
        assert_equivalent(
            "a = LOAD 'in' AS (x:int);\n"
            "f = FILTER a BY x > 0;\n"
            "b = FOREACH f GENERATE x + 1 AS y;\n"
            "c = FOREACH f GENERATE x - 1 AS z;\n"
            "STORE b INTO 'ob';\n"
            "STORE c INTO 'oc';",
            {"in": [(1,), (-1,), (2,)]},
        )

    def test_multi_stage_chain(self):
        assert_equivalent(
            "a  = LOAD 'in' AS (s:chararray, v:int);\n"
            "g1 = GROUP a BY s;\n"
            "c1 = FOREACH g1 GENERATE group AS s, SUM(a.v) AS t;\n"
            "g2 = GROUP c1 BY t;\n"
            "c2 = FOREACH g2 GENERATE group AS t, COUNT(c1) AS n;\n"
            "o  = ORDER c2 BY n DESC;\n"
            "STORE o INTO 'out';",
            {"in": [("a", 1), ("a", 2), ("b", 3), ("c", 3)]},
        )

    def test_join_then_group(self):
        assert_equivalent(
            "u = LOAD 'u' AS (id:int, site:chararray);\n"
            "v = LOAD 'v' AS (id:int, ms:int);\n"
            "j = JOIN u BY id, v BY id;\n"
            "g = GROUP j BY site;\n"  # suffix-resolved u::site
            "c = FOREACH g GENERATE group, COUNT(j) AS n;\n"
            "STORE c INTO 'out';",
            {
                "u": [(1, "a"), (2, "b"), (3, "a")],
                "v": [(1, 10), (3, 30), (3, 31)],
            },
        )

    def test_self_join(self):
        assert_equivalent(
            "a = LOAD 'a' AS (x:int, y:int);\n"
            "j = JOIN a BY x, a BY y;\n"
            "STORE j INTO 'out';",
            {"a": [(1, 2), (2, 1), (3, 3)]},
        )

    def test_empty_input(self):
        out = assert_equivalent(
            "a = LOAD 'in' AS (k:chararray, v:int);\n"
            "g = GROUP a BY k;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
            "STORE c INTO 'out';",
            {"in": []},
        )
        assert out["out"] == []


# -- property-based equivalence -------------------------------------------------

keys = st.sampled_from(["a", "b", "c", "d"])
values = st.one_of(st.integers(-100, 100), st.none())
rows = st.lists(st.tuples(keys, values), max_size=30)


class TestPropertyEquivalence:
    @given(data=rows)
    @settings(max_examples=60, deadline=None)
    def test_group_aggregate_pipeline(self, data):
        assert_equivalent(
            "a = LOAD 'in' AS (k:chararray, v:int);\n"
            "f = FILTER a BY v >= 0;\n"
            "g = GROUP f BY k;\n"
            "c = FOREACH g GENERATE group, COUNT(f) AS n, SUM(f.v) AS t;\n"
            "STORE c INTO 'out';",
            {"in": data},
        )

    @given(left=rows, right=rows)
    @settings(max_examples=40, deadline=None)
    def test_join_pipeline(self, left, right):
        assert_equivalent(
            "l = LOAD 'l' AS (k:chararray, v:int);\n"
            "r = LOAD 'r' AS (k:chararray, w:int);\n"
            "j = JOIN l BY k, r BY k;\n"
            "p = FOREACH j GENERATE l::k, v, w;\n"
            "STORE p INTO 'out';",
            {"l": left, "r": right},
        )

    @given(left=rows, right=rows)
    @settings(max_examples=40, deadline=None)
    def test_union_distinct_order(self, left, right):
        assert_equivalent(
            "l = LOAD 'l' AS (k:chararray, v:int);\n"
            "r = LOAD 'r' AS (k:chararray, v:int);\n"
            "u = UNION l, r;\n"
            "d = DISTINCT u;\n"
            "o = ORDER d BY v;\n"
            "STORE o INTO 'out';",
            {"l": left, "r": right},
        )

    @given(data=rows)
    @settings(max_examples=40, deadline=None)
    def test_two_stage_aggregation(self, data):
        assert_equivalent(
            "a  = LOAD 'in' AS (k:chararray, v:int);\n"
            "g1 = GROUP a BY k;\n"
            "c1 = FOREACH g1 GENERATE group AS k, COUNT(a) AS n;\n"
            "g2 = GROUP c1 BY n;\n"
            "c2 = FOREACH g2 GENERATE group AS n, COUNT(c1) AS m;\n"
            "STORE c2 INTO 'out';",
            {"in": data},
        )

    @given(data=rows)
    @settings(max_examples=40, deadline=None)
    def test_flatten_regroup_roundtrip(self, data):
        # GROUP then FLATTEN is the identity on the underlying bag.
        out = assert_equivalent(
            "a = LOAD 'in' AS (k:chararray, v:int);\n"
            "g = GROUP a BY k;\n"
            "f = FOREACH g GENERATE FLATTEN(a);\n"
            "STORE f INTO 'out';",
            {"in": data},
        )
        assert canonical(out["out"]) == canonical(data)
