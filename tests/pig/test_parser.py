"""Unit tests for the Pig-Latin parser."""

import pytest

from repro.pig import (
    Distinct,
    Filter,
    ForEach,
    Group,
    Join,
    Limit,
    Load,
    Order,
    ParseError,
    PigType,
    Store,
    Union,
    parse,
    parse_expression,
    tokenize,
)
from repro.pig.expressions import BinaryOp, BoolOp, Column, Comparison, Const, Flatten


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("a = LOAD 'x';")
        kinds = [t.kind for t in tokens]
        assert kinds == ["name", "op", "keyword", "string", "op", "eof"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("FILTER filter FiLtEr")
        assert all(t.kind == "keyword" and t.text == "filter" for t in tokens[:-1])

    def test_comments_skipped(self):
        tokens = tokenize("a -- a comment\n = 1;")
        assert [t.text for t in tokens[:-1]] == ["a", "=", "1", ";"]

    def test_line_numbers_advance(self):
        tokens = tokenize("a\n\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 3

    def test_stray_character_raises_with_line(self):
        with pytest.raises(ParseError, match="line 2"):
            tokenize("a = 1;\n@")

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e4 10L")
        assert [t.kind for t in tokens[:-1]] == ["number"] * 4

    def test_string_with_escaped_quote(self):
        tokens = tokenize(r"'it\'s'")
        assert tokens[0].kind == "string"


class TestStatementParsing:
    def test_load_with_schema(self):
        plan = parse("a = LOAD 'in' AS (x:int, y:double, s:chararray);")
        load = plan["a"]
        assert isinstance(load, Load)
        assert load.path == "in"
        assert load.schema.names == ("x", "y", "s")
        assert load.schema.field("y").type is PigType.DOUBLE

    def test_load_without_schema_gets_value_column(self):
        plan = parse("a = LOAD 'in';")
        assert plan["a"].schema.names == ("value",)

    def test_load_untyped_fields_are_bytearray(self):
        plan = parse("a = LOAD 'in' AS (x, y);")
        assert plan["a"].schema.field("x").type is PigType.BYTEARRAY

    def test_load_unknown_type(self):
        with pytest.raises(ParseError, match="unknown type"):
            parse("a = LOAD 'in' AS (x:string);")

    def test_filter(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int);\nb = FILTER a BY x > 3;"
        )
        assert isinstance(plan["b"], Filter)
        assert plan["b"].source == "a"

    def test_foreach_generate_with_as(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int);\n"
            "b = FOREACH a GENERATE x, x * 2 AS dbl;"
        )
        foreach = plan["b"]
        assert isinstance(foreach, ForEach)
        assert len(foreach.items) == 2
        assert foreach.items[1].name == "dbl"

    def test_foreach_flatten(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int);\n"
            "g = GROUP a BY x;\n"
            "b = FOREACH g GENERATE group, FLATTEN(a);"
        )
        assert isinstance(plan["b"].items[1].expression, Flatten)

    def test_group(self):
        plan = parse("a = LOAD 'in' AS (x:int);\ng = GROUP a BY x;")
        assert isinstance(plan["g"], Group)

    def test_group_keyword_as_column(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int);\n"
            "g = GROUP a BY x;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
            "o = ORDER c BY group;"
        )
        assert isinstance(plan["o"], Order)
        assert plan["o"].column == "group"

    def test_join(self):
        plan = parse(
            "a = LOAD 'a' AS (x:int);\n"
            "b = LOAD 'b' AS (y:int);\n"
            "j = JOIN a BY x, b BY y;"
        )
        join = plan["j"]
        assert isinstance(join, Join)
        assert join.left == "a" and join.right == "b"

    def test_order_desc(self):
        plan = parse("a = LOAD 'in' AS (x:int);\no = ORDER a BY x DESC;")
        assert plan["o"].descending

    def test_order_asc_default(self):
        plan = parse("a = LOAD 'in' AS (x:int);\no = ORDER a BY x ASC;")
        assert not plan["o"].descending

    def test_order_by_positional(self):
        plan = parse("a = LOAD 'in' AS (x:int);\no = ORDER a BY $0;")
        assert plan["o"].column == "$0"

    def test_distinct_limit_union(self):
        plan = parse(
            "a = LOAD 'a' AS (x:int);\n"
            "b = LOAD 'b' AS (x:int);\n"
            "u = UNION a, b;\n"
            "d = DISTINCT u;\n"
            "l = LIMIT d 10;"
        )
        assert isinstance(plan["u"], Union)
        assert isinstance(plan["d"], Distinct)
        assert isinstance(plan["l"], Limit)
        assert plan["l"].count == 10

    def test_store(self):
        plan = parse("a = LOAD 'in' AS (x:int);\nSTORE a INTO 'out';")
        stores = plan.stores
        assert len(stores) == 1
        assert isinstance(stores[0], Store)
        assert stores[0].path == "out"

    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="';'"):
            parse("a = LOAD 'in' AS (x:int)")

    def test_unknown_operation(self):
        with pytest.raises(ParseError, match="expected an operation"):
            parse("a = FROBNICATE b;")

    def test_store_without_into(self):
        with pytest.raises(ParseError, match="'into'"):
            parse("a = LOAD 'x';\nSTORE a 'out';")


class TestExpressionParsing:
    def test_precedence_mul_over_add(self):
        expression = parse_expression("1 + 2 * 3")
        assert isinstance(expression, BinaryOp)
        assert expression.op == "+"
        assert expression.evaluate((), Schema_empty()) == 7

    def test_parentheses_override(self):
        assert parse_expression("(1 + 2) * 3").evaluate((), Schema_empty()) == 9

    def test_comparison_binds_looser_than_arithmetic(self):
        expression = parse_expression("1 + 1 == 2")
        assert isinstance(expression, Comparison)
        assert expression.evaluate((), Schema_empty()) is True

    def test_and_or_precedence(self):
        # AND binds tighter than OR.
        expression = parse_expression("true or false and false")
        assert isinstance(expression, BoolOp)
        assert expression.op == "or"
        assert expression.evaluate((), Schema_empty()) is True

    def test_not_prefix(self):
        assert parse_expression("not false").evaluate((), Schema_empty()) is True

    def test_column_vs_call_vs_bagproject(self):
        assert isinstance(parse_expression("x"), Column)
        assert parse_expression("COUNT(x)") is not None
        bag = parse_expression("b.v")
        assert bag.bag == "b" and bag.column == "v"

    def test_string_literal_unquoting(self):
        assert parse_expression(r"'a\'b'").value == "a'b"

    def test_float_and_scientific(self):
        assert parse_expression("2.5").value == 2.5
        assert parse_expression("1e3").value == 1000.0

    def test_long_suffix(self):
        assert parse_expression("10L").value == 10

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 ;")

    def test_unexpected_token(self):
        with pytest.raises(ParseError, match="unexpected token"):
            parse_expression("* 3")


def Schema_empty():
    from repro.pig import Schema

    return Schema(())


class TestFullScripts:
    def test_paper_style_pipeline_parses(self):
        plan = parse(
            """
            -- site-level aggregation
            pages  = LOAD 'pages' AS (url:chararray, size:int, site:chararray);
            big    = FILTER pages BY size > 1024 AND site != 'spam.example';
            bysite = GROUP big BY site;
            counts = FOREACH bysite GENERATE group, COUNT(big) AS cnt;
            top    = ORDER counts BY cnt DESC;
            few    = LIMIT top 10;
            STORE few INTO 'results';
            """
        )
        assert plan.aliases[:3] == ["pages", "big", "bysite"]
        plan.validate()

    def test_describe_lists_every_alias(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int);\nb = FILTER a BY x > 1;\nSTORE b INTO 'o';"
        )
        text = plan.describe()
        assert "a" in text and "FILTER" in text
