"""Unit tests for the logical-plan -> MapReduce-stage compiler."""

import pytest

from repro.pig import (
    LoadRef,
    PlanError,
    StageRef,
    compile_plan,
    compile_script,
    parse,
)


class TestStageShapes:
    def test_map_only_stage(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int);\n"
            "b = FILTER a BY x > 1;\n"
            "STORE b INTO 'out';"
        )
        assert len(pipeline) == 1
        stage = pipeline.stages[0]
        assert stage.is_map_only
        assert stage.branches[0].map_aliases == ("b",)
        assert stage.store_path == "out"

    def test_single_group_is_one_stage(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
            "STORE c INTO 'out';"
        )
        assert len(pipeline) == 1
        stage = pipeline.stages[0]
        assert stage.shuffle_alias == "g"
        assert stage.reduce_aliases == ("c",)
        assert stage.output_alias == "c"

    def test_chained_groups_are_two_stages(self):
        pipeline = compile_script(
            "a  = LOAD 'in' AS (x:int, s:chararray);\n"
            "g1 = GROUP a BY s;\n"
            "c1 = FOREACH g1 GENERATE group AS s, COUNT(a) AS n;\n"
            "g2 = GROUP c1 BY n;\n"
            "c2 = FOREACH g2 GENERATE group, COUNT(c1) AS m;\n"
            "STORE c2 INTO 'out';"
        )
        assert len(pipeline) == 2
        assert pipeline.stages[0].shuffle_alias == "g1"
        assert pipeline.stages[1].shuffle_alias == "g2"
        assert pipeline.stages[1].upstream_stages == (0,)
        assert pipeline.depth == 2

    def test_filter_before_group_is_map_side(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "f = FILTER a BY x > 1;\n"
            "g = GROUP f BY s;\n"
            "STORE g INTO 'out';"
        )
        stage = pipeline.stages[0]
        assert stage.branches[0].map_aliases == ("f",)
        assert stage.shuffle_alias == "g"

    def test_filter_after_group_is_reduce_side(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
            "f = FILTER c BY n > 1;\n"
            "STORE f INTO 'out';"
        )
        assert len(pipeline) == 1
        assert pipeline.stages[0].reduce_aliases == ("c", "f")

    def test_join_merges_two_branches(self):
        pipeline = compile_script(
            "a = LOAD 'a' AS (x:int);\n"
            "b = LOAD 'b' AS (y:int);\n"
            "fb = FILTER b BY y > 0;\n"
            "j = JOIN a BY x, fb BY y;\n"
            "STORE j INTO 'out';"
        )
        assert len(pipeline) == 1
        stage = pipeline.stages[0]
        sides = {branch.side for branch in stage.branches}
        assert sides == {"left", "right"}
        right = next(br for br in stage.branches if br.side == "right")
        assert right.map_aliases == ("fb",)

    def test_join_after_group_restages(self):
        pipeline = compile_script(
            "a = LOAD 'a' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "c = FOREACH g GENERATE group AS s, COUNT(a) AS n;\n"
            "b = LOAD 'b' AS (s:chararray, w:int);\n"
            "j = JOIN c BY s, b BY s;\n"
            "STORE j INTO 'out';"
        )
        assert len(pipeline) == 2
        join_stage = pipeline.stages[1]
        assert join_stage.shuffle_alias == "j"
        left = next(br for br in join_stage.branches if br.side == "left")
        assert isinstance(left.source, StageRef)
        right = next(br for br in join_stage.branches if br.side == "right")
        assert isinstance(right.source, LoadRef)

    def test_self_join_materializes_once(self):
        pipeline = compile_script(
            "a = LOAD 'a' AS (x:int, y:int);\n"
            "j = JOIN a BY x, a BY y;\n"
            "STORE j INTO 'out';"
        )
        assert len(pipeline) == 2
        first, second = pipeline.stages
        assert first.is_map_only
        assert second.shuffle_alias == "j"
        assert all(isinstance(br.source, StageRef) for br in second.branches)

    def test_union_concatenates_branches(self):
        pipeline = compile_script(
            "a = LOAD 'a' AS (x:int);\n"
            "b = LOAD 'b' AS (x:int);\n"
            "u = UNION a, b;\n"
            "g = GROUP u BY x;\n"
            "STORE g INTO 'out';"
        )
        assert len(pipeline) == 1
        assert len(pipeline.stages[0].branches) == 2

    def test_fanout_materializes(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int);\n"
            "f = FILTER a BY x > 0;\n"
            "b = FOREACH f GENERATE x + 1 AS y;\n"
            "c = FOREACH f GENERATE x - 1 AS z;\n"
            "STORE b INTO 'ob';\n"
            "STORE c INTO 'oc';"
        )
        # f materializes once; b and c each become a stage reading it.
        assert len(pipeline) == 3
        assert pipeline.stages[0].output_alias == "f"
        assert all(
            isinstance(stage.branches[0].source, StageRef)
            for stage in pipeline.stages[1:]
        )

    def test_order_after_group_restages(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
            "o = ORDER c BY n DESC;\n"
            "STORE o INTO 'out';"
        )
        assert len(pipeline) == 2
        assert pipeline.stages[1].shuffle_alias == "o"

    def test_limit_after_union_restages(self):
        pipeline = compile_script(
            "a = LOAD 'a' AS (x:int);\n"
            "b = LOAD 'b' AS (x:int);\n"
            "u = UNION a, b;\n"
            "l = LIMIT u 5;\n"
            "STORE l INTO 'out';"
        )
        # LIMIT cannot run per-branch; the union materializes first.
        assert len(pipeline) == 2

    def test_distinct_is_blocking(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int);\n"
            "d = DISTINCT a;\n"
            "STORE d INTO 'out';"
        )
        assert pipeline.stages[0].shuffle_alias == "d"

    def test_invalid_plan_rejected_before_compiling(self):
        plan = parse("a = LOAD 'in' AS (x:int);")
        with pytest.raises(PlanError, match="no STORE"):
            compile_plan(plan)

    def test_describe_mentions_stages(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int);\nSTORE a INTO 'out';"
        )
        assert "stage 0" in pipeline.describe()


class TestPipelineMetrics:
    def test_final_stages(self):
        pipeline = compile_script(
            "a = LOAD 'a' AS (x:int);\n"
            "g = GROUP a BY x;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
            "STORE c INTO 'out';"
        )
        assert [s.index for s in pipeline.final_stages] == [0]

    def test_stage_sizes_decrease_through_aggregation(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
            "g2 = GROUP c BY n;\n"
            "c2 = FOREACH g2 GENERATE group, COUNT(c) AS m;\n"
            "STORE c2 INTO 'out';"
        )
        sizes = pipeline.estimate_stage_sizes({"in": 32.0})
        assert sizes[0].input_gb == pytest.approx(32.0)
        assert sizes[1].input_gb == pytest.approx(sizes[0].output_gb)
        assert sizes[1].output_gb < sizes[0].output_gb

    def test_to_planner_jobs_chains_sizes(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
            "STORE c INTO 'out';"
        )
        jobs = pipeline.to_planner_jobs({"in": 32.0}, throughput_scale=2.0)
        assert len(jobs) == 1
        job = jobs[0]
        assert job.input_gb == pytest.approx(32.0)
        assert job.throughput_scale == 2.0
        assert 0 < job.map_output_ratio <= 1.5

    def test_map_only_stage_job_has_unit_reduce_ratio(self):
        pipeline = compile_script(
            "a = LOAD 'in' AS (x:int);\n"
            "f = FILTER a BY x > 1;\n"
            "STORE f INTO 'out';"
        )
        job = pipeline.to_planner_jobs({"in": 8.0})[0]
        assert job.reduce_output_ratio == pytest.approx(1.0)
