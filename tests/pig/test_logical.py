"""Unit tests for logical plan assembly, validation and size estimation."""

import pytest

from repro.pig import (
    Filter,
    LogicalPlan,
    PigType,
    PlanError,
    parse,
    parse_expression,
)
from repro.pig.operators import Load, Store
from repro.pig.schema import Schema


def simple_plan():
    return parse(
        "a = LOAD 'in' AS (x:int, s:chararray);\n"
        "b = FILTER a BY x > 1;\n"
        "STORE b INTO 'out';"
    )


class TestPlanAssembly:
    def test_duplicate_alias_rejected(self):
        plan = LogicalPlan()
        plan.add(Load("a", "in", Schema.of("x:int")))
        with pytest.raises(PlanError, match="already defined"):
            plan.add(Load("a", "in2", Schema.of("x:int")))

    def test_undefined_input_rejected(self):
        plan = LogicalPlan()
        with pytest.raises(PlanError, match="undefined alias"):
            plan.add(Filter("b", "missing", parse_expression("x > 1")))

    def test_getitem_unknown_alias(self):
        plan = simple_plan()
        with pytest.raises(PlanError, match="unknown alias"):
            plan["zz"]

    def test_aliases_in_definition_order(self):
        plan = simple_plan()
        assert plan.aliases == ["a", "b", "__store1"]

    def test_consumers(self):
        plan = simple_plan()
        assert [op.alias for op in plan.consumers("a")] == ["b"]

    def test_loads_and_stores(self):
        plan = simple_plan()
        assert [ld.path for ld in plan.loads] == ["in"]
        assert [st.path for st in plan.stores] == ["out"]


class TestValidation:
    def test_valid_plan_passes(self):
        simple_plan().validate()

    def test_no_store_rejected(self):
        plan = parse("a = LOAD 'in' AS (x:int);")
        with pytest.raises(PlanError, match="no STORE"):
            plan.validate()

    def test_dead_dataflow_rejected(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int);\n"
            "dead = FILTER a BY x > 1;\n"
            "STORE a INTO 'out';"
        )
        with pytest.raises(PlanError, match="dead"):
            plan.validate()

    def test_type_error_surfaces_in_schemas(self):
        plan = parse(
            "a = LOAD 'in' AS (s:chararray);\n"
            "b = FOREACH a GENERATE s * 2;\n"
            "STORE b INTO 'out';"
        )
        with pytest.raises(PlanError, match="non-numeric"):
            plan.validate()


class TestSchemaPropagation:
    def test_group_output_schema(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "STORE g INTO 'out';"
        )
        schemas = plan.schemas()
        group_schema = schemas["g"]
        assert group_schema.names == ("group", "a")
        assert group_schema.field("group").type is PigType.CHARARRAY
        assert group_schema.field("a").type is PigType.BAG
        assert group_schema.field("a").element.names == ("x", "s")

    def test_join_output_prefixed(self):
        plan = parse(
            "a = LOAD 'a' AS (x:int);\n"
            "b = LOAD 'b' AS (y:int);\n"
            "j = JOIN a BY x, b BY y;\n"
            "STORE j INTO 'out';"
        )
        assert plan.schemas()["j"].names == ("a::x", "b::y")

    def test_foreach_auto_names_dedupe(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int);\n"
            "b = FOREACH a GENERATE x, x, x + 1;\n"
            "STORE b INTO 'out';"
        )
        names = plan.schemas()["b"].names
        assert len(set(names)) == 3
        assert names[0] == "x"

    def test_flatten_expands_bag_schema(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "f = FOREACH g GENERATE group, FLATTEN(a);\n"
            "STORE f INTO 'out';"
        )
        assert plan.schemas()["f"].names == ("group", "x", "s")

    def test_union_arity_mismatch(self):
        plan = parse(
            "a = LOAD 'a' AS (x:int);\n"
            "b = LOAD 'b' AS (x:int, y:int);\n"
            "u = UNION a, b;\n"
            "STORE u INTO 'out';"
        )
        with pytest.raises(PlanError, match="arities differ"):
            plan.validate()

    def test_union_type_mismatch(self):
        plan = parse(
            "a = LOAD 'a' AS (x:int);\n"
            "b = LOAD 'b' AS (x:chararray);\n"
            "u = UNION a, b;\n"
            "STORE u INTO 'out';"
        )
        with pytest.raises(PlanError, match="left but"):
            plan.validate()


class TestSizeEstimation:
    def test_load_size_from_path_key(self):
        plan = simple_plan()
        estimates = plan.estimate_sizes({"in": 10.0})
        assert estimates["a"].total_gb == pytest.approx(10.0)

    def test_load_size_from_alias_key(self):
        plan = simple_plan()
        estimates = plan.estimate_sizes({"a": 10.0})
        assert estimates["a"].total_gb == pytest.approx(10.0)

    def test_missing_input_size_raises(self):
        plan = simple_plan()
        with pytest.raises(PlanError, match="no input size"):
            plan.estimate_sizes({})

    def test_filter_shrinks(self):
        plan = simple_plan()
        estimates = plan.estimate_sizes({"in": 10.0})
        assert estimates["b"].total_gb < estimates["a"].total_gb

    def test_filter_hint_overrides_heuristic(self):
        plan = LogicalPlan()
        plan.add(Load("a", "in", Schema.of("x:int")))
        plan.add(
            Filter("b", "a", parse_expression("x > 1"), selectivity_hint=0.05)
        )
        plan.add(Store("__s", "b", "out"))
        estimates = plan.estimate_sizes({"in": 10.0})
        assert estimates["b"].rows == pytest.approx(estimates["a"].rows * 0.05)

    def test_group_keeps_bytes_but_shrinks_rows(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "STORE g INTO 'out';"
        )
        estimates = plan.estimate_sizes({"in": 10.0})
        assert estimates["g"].rows < estimates["a"].rows
        # Bags retain the input bytes (plus keys): total size stays close.
        assert estimates["g"].total_gb == pytest.approx(10.0, rel=0.25)

    def test_aggregation_collapses_bytes(self):
        plan = parse(
            "a = LOAD 'in' AS (x:int, s:chararray);\n"
            "g = GROUP a BY s;\n"
            "c = FOREACH g GENERATE group, COUNT(a) AS n;\n"
            "STORE c INTO 'out';"
        )
        estimates = plan.estimate_sizes({"in": 10.0})
        assert estimates["c"].total_gb < 0.2 * estimates["a"].total_gb

    def test_join_width_is_sum_of_inputs(self):
        plan = parse(
            "a = LOAD 'a' AS (x:int, p:int);\n"
            "b = LOAD 'b' AS (y:int, q:int, r:int);\n"
            "j = JOIN a BY x, b BY y;\n"
            "STORE j INTO 'out';"
        )
        estimates = plan.estimate_sizes({"a": 1.0, "b": 1.0})
        assert estimates["j"].bytes_per_row == pytest.approx(
            estimates["a"].bytes_per_row + estimates["b"].bytes_per_row
        )

    def test_describe_renders(self):
        assert "LOAD" in simple_plan().describe()
