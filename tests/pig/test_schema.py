"""Unit tests for the Pig schema/type layer."""

import pytest

from repro.pig import Field, PigType, Schema, check_tuple, rows_of
from repro.pig.schema import numeric_join


class TestPigType:
    def test_numeric_classification(self):
        assert PigType.INT.is_numeric
        assert PigType.DOUBLE.is_numeric
        assert not PigType.CHARARRAY.is_numeric
        assert not PigType.BAG.is_numeric

    def test_complex_classification(self):
        assert PigType.BAG.is_complex
        assert PigType.TUPLE.is_complex
        assert not PigType.INT.is_complex

    def test_numeric_join_widens(self):
        assert numeric_join(PigType.INT, PigType.LONG) is PigType.LONG
        assert numeric_join(PigType.INT, PigType.DOUBLE) is PigType.DOUBLE
        assert numeric_join(PigType.FLOAT, PigType.INT) is PigType.FLOAT

    def test_numeric_join_bytearray_defaults_to_double(self):
        assert numeric_join(PigType.BYTEARRAY, PigType.INT) is PigType.DOUBLE

    def test_numeric_join_rejects_strings(self):
        with pytest.raises(TypeError):
            numeric_join(PigType.CHARARRAY, PigType.INT)


class TestField:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Field("")

    def test_complex_needs_element_schema(self):
        with pytest.raises(ValueError):
            Field("b", PigType.BAG)

    def test_scalar_rejects_element_schema(self):
        inner = Schema.of("x:int")
        with pytest.raises(ValueError):
            Field("x", PigType.INT, inner)

    def test_renamed_keeps_type(self):
        f = Field("x", PigType.INT).renamed("y")
        assert f.name == "y"
        assert f.type is PigType.INT

    def test_str_shows_nested_schema(self):
        inner = Schema.of("x:int")
        f = Field("b", PigType.BAG, inner)
        assert "b:bag(x:int)" == str(f)


class TestSchema:
    def test_of_parses_types(self):
        schema = Schema.of("x:int", "name:chararray", "score:double")
        assert schema.names == ("x", "name", "score")
        assert schema.field("score").type is PigType.DOUBLE

    def test_of_defaults_to_bytearray(self):
        schema = Schema.of("raw")
        assert schema.field("raw").type is PigType.BYTEARRAY

    def test_of_unknown_type_falls_back_to_name(self):
        # "x:integer" is not a type annotation ("integer" is not a Pig
        # type), so the whole spec is taken as an (untyped) column name —
        # necessary so join-style names like "a::x" survive Schema.of.
        schema = Schema.of("x:integer")
        assert schema.names == ("x:integer",)
        assert schema.fields[0].type is PigType.BYTEARRAY

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema.of("x:int", "x:int")

    def test_index_of_by_name(self):
        schema = Schema.of("a:int", "b:int")
        assert schema.index_of("b") == 1

    def test_index_of_positional(self):
        schema = Schema.of("a:int", "b:int")
        assert schema.index_of("$0") == 0
        assert schema.index_of("$1") == 1

    def test_positional_out_of_range(self):
        schema = Schema.of("a:int")
        with pytest.raises(KeyError, match="out of range"):
            schema.index_of("$3")

    def test_bad_positional(self):
        schema = Schema.of("a:int")
        with pytest.raises(KeyError, match="bad positional"):
            schema.index_of("$x")

    def test_unknown_name_lists_candidates(self):
        schema = Schema.of("a:int", "b:int")
        with pytest.raises(KeyError, match="a, b"):
            schema.index_of("c")

    def test_join_suffix_resolution(self):
        schema = Schema.of("users::uid:int", "visits::url:chararray")
        assert schema.index_of("url") == 1
        assert schema.index_of("users::uid") == 0

    def test_ambiguous_suffix_raises(self):
        schema = Schema.of("a::x:int", "b::x:int")
        with pytest.raises(KeyError, match="ambiguous"):
            schema.index_of("x")

    def test_project_and_prefix(self):
        schema = Schema.of("a:int", "b:chararray")
        assert schema.project(["b"]).names == ("b",)
        assert schema.prefixed("rel").names == ("rel::a", "rel::b")

    def test_concat(self):
        left = Schema.of("a:int")
        right = Schema.of("b:int")
        assert left.concat(right).names == ("a", "b")

    def test_iteration_and_len(self):
        schema = Schema.of("a:int", "b:int")
        assert len(schema) == 2
        assert [f.name for f in schema] == ["a", "b"]


class TestCheckTuple:
    def test_accepts_valid_row(self):
        schema = Schema.of("x:int", "s:chararray")
        check_tuple((1, "hi"), schema)

    def test_nulls_always_allowed(self):
        schema = Schema.of("x:int")
        check_tuple((None,), schema)

    def test_arity_mismatch(self):
        schema = Schema.of("x:int")
        with pytest.raises(ValueError, match="arity"):
            check_tuple((1, 2), schema)

    def test_type_mismatch(self):
        schema = Schema.of("x:int")
        with pytest.raises(TypeError, match="not a int"):
            check_tuple(("hi",), schema)

    def test_float_field_accepts_int(self):
        schema = Schema.of("x:double")
        check_tuple((3,), schema)

    def test_nested_bag_checked(self):
        inner = Schema.of("v:int")
        schema = Schema((Field("b", PigType.BAG, inner),))
        check_tuple(([(1,), (2,)],), schema)
        with pytest.raises(TypeError):
            check_tuple(([("oops",)],), schema)

    def test_bag_must_be_list(self):
        inner = Schema.of("v:int")
        schema = Schema((Field("b", PigType.BAG, inner),))
        with pytest.raises(TypeError, match="lists"):
            check_tuple(((1,),), schema)

    def test_rows_of_coerces_sequences(self):
        schema = Schema.of("x:int", "y:int")
        rows = rows_of(schema, [[1, 2], (3, 4)])
        assert rows == [(1, 2), (3, 4)]
