"""Randomized end-to-end compiler equivalence.

Hypothesis builds random (but well-typed) Pig scripts — a LOAD followed
by a random chain of operators and a STORE — plus random input rows,
and asserts the compiler's staged map/shuffle/reduce execution matches
direct logical interpretation.  This is the strongest statement the
test suite makes about the compiler: no hand-picked plan shapes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pig import (
    canonical,
    compile_plan,
    evaluate_logical,
    parse,
    run_pipeline_local,
)

# Each step appends one statement reading the previous alias.  The
# post-GROUP FOREACH immediately re-flattens to (k, v) so every step
# sees the same two-column schema and steps compose freely.
STEPS = {
    "filter_pos": "{out} = FILTER {src} BY v >= 0;",
    "filter_key": "{out} = FILTER {src} BY k != 'b';",
    "project": "{out} = FOREACH {src} GENERATE k, v + 1 AS v;",
    "scale": "{out} = FOREACH {src} GENERATE k, v * 2 AS v;",
    "group_count": (
        "{out}g = GROUP {src} BY k;\n"
        "{out} = FOREACH {out}g GENERATE group AS k, COUNT({src}) AS v;"
    ),
    "group_sum": (
        "{out}g = GROUP {src} BY k;\n"
        "{out} = FOREACH {out}g GENERATE group AS k, SUM({src}.v) AS v;"
    ),
    "distinct": "{out} = DISTINCT {src};",
    "order": "{out} = ORDER {src} BY v;",
    "limit": "{out} = LIMIT {src} 3;",
}

step_names = st.lists(
    st.sampled_from(sorted(STEPS)), min_size=1, max_size=5
)

rows = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.one_of(st.integers(-50, 50), st.none()),
    ),
    max_size=25,
)


def build_script(names: list[str]) -> str:
    lines = ["r0 = LOAD 'in' AS (k:chararray, v:int);"]
    src = "r0"
    for index, name in enumerate(names, start=1):
        out = f"r{index}"
        lines.append(STEPS[name].format(src=src, out=out))
        src = out
    lines.append(f"STORE {src} INTO 'out';")
    return "\n".join(lines)


class TestRandomPipelines:
    @given(names=step_names, data=rows)
    @settings(max_examples=120, deadline=None)
    def test_staged_equals_direct(self, names, data):
        script = build_script(names)
        plan = parse(script)
        pipeline = compile_plan(plan)
        direct = evaluate_logical(plan, {"in": data})
        staged = run_pipeline_local(pipeline, {"in": data})
        assert canonical(direct["out"]) == canonical(staged["out"]), script

    @given(names=step_names)
    @settings(max_examples=60, deadline=None)
    def test_stage_count_matches_blocking_ops(self, names):
        # Consecutive blocking operators need separate shuffles; chains
        # of non-blocking ops fold into existing stages.  Stage count
        # therefore lies between 1 and blocking-op count + 1.
        script = build_script(names)
        pipeline = compile_plan(parse(script))
        blocking = sum(
            1
            for name in names
            if name in ("group_count", "group_sum", "distinct", "order")
        )
        assert 1 <= len(pipeline.stages) <= blocking + 1 + len(names)
        assert pipeline.depth <= len(pipeline.stages)

    @given(names=step_names, data=rows)
    @settings(max_examples=60, deadline=None)
    def test_size_estimates_positive(self, names, data):
        script = build_script(names)
        pipeline = compile_plan(parse(script))
        sizes = pipeline.estimate_stage_sizes({"in": 4.0})
        assert len(sizes) == len(pipeline.stages)
        for stage_sizes in sizes:
            assert stage_sizes.input_gb >= 0.0
            assert stage_sizes.shuffle_gb >= 0.0
            assert stage_sizes.output_gb >= 0.0

    @given(names=step_names)
    @settings(max_examples=40, deadline=None)
    def test_planner_jobs_always_valid(self, names):
        script = build_script(names)
        pipeline = compile_plan(parse(script))
        jobs = pipeline.to_planner_jobs({"in": 4.0})
        assert len(jobs) == len(pipeline.stages)
        for job in jobs:
            assert job.input_gb > 0
            assert job.map_output_ratio > 0
            assert job.reduce_output_ratio > 0
