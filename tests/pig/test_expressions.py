"""Unit tests for Pig expression evaluation and type inference."""

import pytest

from repro.pig import (
    BagProject,
    BinaryOp,
    BoolOp,
    Column,
    Comparison,
    Const,
    ExpressionError,
    FunctionCall,
    Negate,
    Not,
    PigType,
    Schema,
    parse_expression,
)
from repro.pig.expressions import as_condition, selectivity_estimate
from repro.pig.schema import Field

SCHEMA = Schema.of("x:int", "y:double", "s:chararray", "flag:boolean")
ROW = (4, 2.5, "Web", True)


def ev(source, row=ROW, schema=SCHEMA):
    return parse_expression(source).evaluate(row, schema)


class TestEvaluation:
    def test_column_lookup(self):
        assert ev("x") == 4
        assert ev("$2") == "Web"

    def test_arithmetic(self):
        assert ev("x + 1") == 5
        assert ev("x * y") == 10.0
        assert ev("x - 6") == -2
        assert ev("x % 3") == 1

    def test_division_is_float(self):
        assert ev("x / 8") == 0.5

    def test_division_by_zero_is_null(self):
        assert ev("x / 0") is None
        assert ev("x % 0") is None

    def test_unary_minus(self):
        assert ev("-x") == -4
        assert ev("- (x + 1)") == -5

    def test_comparisons(self):
        assert ev("x > 3") is True
        assert ev("x <= 3") is False
        assert ev("s == 'Web'") is True
        assert ev("s != 'Web'") is False

    def test_null_propagates_through_arithmetic(self):
        assert ev("x + 1", row=(None, 2.5, "Web", True)) is None

    def test_null_propagates_through_comparison(self):
        assert ev("x > 3", row=(None, 2.5, "Web", True)) is None

    def test_three_valued_and(self):
        # False AND null is False; True AND null is null.
        assert ev("flag and x > 3", row=(None, 0.0, "", False)) is False
        assert ev("flag and x > 3", row=(None, 0.0, "", True)) is None

    def test_three_valued_or(self):
        assert ev("flag or x > 3", row=(None, 0.0, "", True)) is True
        assert ev("flag or x > 3", row=(None, 0.0, "", False)) is None

    def test_not_null_is_null(self):
        assert ev("not (x > 3)", row=(None, 0.0, "", True)) is None

    def test_boolean_literals(self):
        assert ev("true") is True
        assert ev("false") is False
        assert ev("null") is None

    def test_string_functions(self):
        assert ev("UPPER(s)") == "WEB"
        assert ev("LOWER(s)") == "web"
        assert ev("CONCAT(s, 'x')") == "Webx"

    def test_numeric_functions(self):
        assert ev("ABS(-x)") == 4  # ABS applied to Negate(Column)
        assert ev("SQRT(x)") == 2.0
        assert ev("ROUND(y)") == 2 or ev("ROUND(y)") == 3  # banker's rounding

    def test_sqrt_of_negative_is_null(self):
        assert ev("SQRT(0 - x)") is None


BAG_SCHEMA = Schema(
    (
        Field("group", PigType.CHARARRAY),
        Field("rel", PigType.BAG, Schema.of("v:int", "w:double")),
    )
)
BAG_ROW = ("k", [(1, 1.0), (2, 2.0), (None, 3.0)])


class TestAggregates:
    def test_count_skips_nothing_but_nulls(self):
        expression = FunctionCall("COUNT", (BagProject("rel", "v"),))
        assert expression.evaluate(BAG_ROW, BAG_SCHEMA) == 2

    def test_count_skips_null_first_field(self):
        # Pig semantics: COUNT drops tuples whose first field is null.
        expression = FunctionCall("COUNT", (Column("rel"),))
        assert expression.evaluate(BAG_ROW, BAG_SCHEMA) == 2

    def test_count_star_counts_all(self):
        expression = FunctionCall("COUNT_STAR", (Column("rel"),))
        assert expression.evaluate(BAG_ROW, BAG_SCHEMA) == 3

    def test_sum_projected_column(self):
        expression = FunctionCall("SUM", (BagProject("rel", "v"),))
        assert expression.evaluate(BAG_ROW, BAG_SCHEMA) == 3

    def test_avg_min_max(self):
        values = BagProject("rel", "w")
        assert FunctionCall("AVG", (values,)).evaluate(BAG_ROW, BAG_SCHEMA) == 2.0
        assert FunctionCall("MIN", (values,)).evaluate(BAG_ROW, BAG_SCHEMA) == 1.0
        assert FunctionCall("MAX", (values,)).evaluate(BAG_ROW, BAG_SCHEMA) == 3.0

    def test_sum_of_empty_bag_is_null(self):
        row = ("k", [])
        expression = FunctionCall("SUM", (BagProject("rel", "v"),))
        assert expression.evaluate(row, BAG_SCHEMA) is None

    def test_size_of_bag(self):
        expression = FunctionCall("SIZE", (Column("rel"),))
        assert expression.evaluate(BAG_ROW, BAG_SCHEMA) == 3

    def test_bag_project_infers_bag_of_one_column(self):
        field = BagProject("rel", "v").infer(BAG_SCHEMA)
        assert field.type is PigType.BAG
        assert field.element.names == ("v",)

    def test_bag_project_on_scalar_fails(self):
        with pytest.raises(ExpressionError):
            BagProject("group", "v").infer(BAG_SCHEMA)

    def test_aggregate_requires_bag(self):
        expression = FunctionCall("SUM", (Column("x"),))
        with pytest.raises(ExpressionError, match="aggregates a bag"):
            expression.infer(SCHEMA)


class TestInference:
    def test_arithmetic_widening(self):
        assert parse_expression("x + 1").infer(SCHEMA).type is PigType.INT
        assert parse_expression("x + y").infer(SCHEMA).type is PigType.DOUBLE
        assert parse_expression("x / 2").infer(SCHEMA).type is PigType.DOUBLE

    def test_comparison_is_boolean(self):
        assert parse_expression("x > 1").infer(SCHEMA).type is PigType.BOOLEAN

    def test_string_arithmetic_rejected(self):
        with pytest.raises(ExpressionError):
            parse_expression("s + 1").infer(SCHEMA)

    def test_unknown_column_rejected(self):
        with pytest.raises(ExpressionError, match="no column"):
            parse_expression("zz > 1").infer(SCHEMA)

    def test_unknown_function_rejected(self):
        with pytest.raises(Exception, match="unknown function"):
            parse_expression("NOPE(x)")

    def test_wrong_arity_rejected(self):
        with pytest.raises(Exception, match="argument"):
            parse_expression("COUNT(x, y)")

    def test_const_types(self):
        assert Const(1).infer(SCHEMA).type is PigType.INT
        assert Const(1.5).infer(SCHEMA).type is PigType.DOUBLE
        assert Const("s").infer(SCHEMA).type is PigType.CHARARRAY
        assert Const(True).infer(SCHEMA).type is PigType.BOOLEAN

    def test_references_collects_columns(self):
        expression = parse_expression("x > 1 and UPPER(s) == 'A'")
        assert expression.references() == {"x", "s"}


class TestConditionSemantics:
    def test_only_true_passes(self):
        assert as_condition(True)
        assert not as_condition(False)
        assert not as_condition(None)
        assert not as_condition(1)  # non-boolean truthiness does not count


class TestSelectivity:
    def test_equality_is_selective(self):
        assert selectivity_estimate(parse_expression("x == 1")) == pytest.approx(0.10)

    def test_range_is_a_third(self):
        assert selectivity_estimate(parse_expression("x > 1")) == pytest.approx(0.33)

    def test_and_multiplies(self):
        expression = parse_expression("x == 1 and y > 0")
        assert selectivity_estimate(expression) == pytest.approx(0.033)

    def test_or_adds_capped(self):
        expression = parse_expression("x > 1 or y > 0 or s == 'a' or flag")
        assert selectivity_estimate(expression) <= 1.0

    def test_not_complements(self):
        expression = parse_expression("not (x == 1)")
        assert selectivity_estimate(expression) == pytest.approx(0.90)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BinaryOp("**", Const(1), Const(2))
        with pytest.raises(ValueError):
            Comparison("=", Const(1), Const(2))
        with pytest.raises(ValueError):
            BoolOp("xor", Const(True), Const(False))
