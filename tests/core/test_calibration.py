"""Tests for recurring-job calibration (paper Section 4.1)."""

import pytest

from repro.cloud import public_cloud
from repro.core import (
    ActualConditions,
    CalibrationReport,
    Goal,
    JobController,
    NetworkConditions,
    PlannerJob,
    RateObservation,
    calibrate,
    run_recurring,
)

NETWORK = NetworkConditions.from_mbit_s(16.0)

#: The Fig. 12 misprediction: believed 1.44 GB/h, actually 0.44 GB/h.
BELIEVED_RATE = 1.44
ACTUAL_RATE = 0.44


def mispredicted_services():
    services = public_cloud()
    return [
        s.replace(throughput_gb_per_hour=BELIEVED_RATE)
        if s.name == "ec2.m1.large"
        else s
        for s in services
    ]


def slow_world():
    return ActualConditions(
        throughput_gb_per_hour={"ec2.m1.large": ACTUAL_RATE}
    )


@pytest.fixture(scope="module")
def first_run():
    job = PlannerJob(name="kmeans", input_gb=8.0)
    controller = JobController(
        job,
        mispredicted_services(),
        Goal.min_cost(deadline_hours=8.0),
        network=NETWORK,
    )
    result = controller.run(slow_world())
    return job, result


class TestCalibrate:
    def test_observed_rate_matches_world(self, first_run):
        job, result = first_run
        report = calibrate(job, result, NETWORK)
        observation = report.rate_for("ec2.m1.large")
        assert observation is not None
        assert observation.mean_rate == pytest.approx(ACTUAL_RATE, rel=0.10)
        assert observation.node_hours > 0

    def test_unobserved_service_absent(self, first_run):
        job, result = first_run
        report = calibrate(job, result, NETWORK)
        assert report.rate_for("s3") is None

    def test_healthy_uplink_yields_no_estimate(self, first_run):
        # Every upload interval delivered its planned volume, so nothing
        # was learned about the WAN ceiling — and nothing must be
        # "calibrated" down to whatever the plan happened to schedule.
        job, result = first_run
        report = calibrate(job, result, NETWORK)
        assert report.observed_uplink_gb_h is None

    def test_congested_uplink_is_learned(self):
        job = PlannerJob(name="kmeans", input_gb=8.0)
        controller = JobController(
            job,
            public_cloud(),
            Goal.min_cost(deadline_hours=10.0),
            network=NETWORK,
        )
        result = controller.run(ActualConditions(uplink_factor=0.5))
        report = calibrate(job, result, NETWORK)
        assert report.observed_uplink_gb_h is not None
        assert report.observed_uplink_gb_h == pytest.approx(
            NETWORK.uplink_gb_per_hour * 0.5, rel=0.15
        )

    def test_apply_corrects_compute_rate(self, first_run):
        job, result = first_run
        report = calibrate(job, result, NETWORK)
        services, network = report.apply(mispredicted_services(), NETWORK)
        rate = next(
            s.throughput_gb_per_hour for s in services if s.name == "ec2.m1.large"
        )
        assert rate == pytest.approx(ACTUAL_RATE, rel=0.10)
        # Storage-only services untouched.
        s3 = next(s for s in services if s.name == "s3")
        assert not s3.can_compute

    def test_apply_never_inflates_uplink(self):
        report = CalibrationReport(
            job_name="j",
            throughput_scale=1.0,
            rates=(),
            observed_uplink_gb_h=NETWORK.uplink_gb_per_hour * 10,
        )
        _services, network = report.apply(public_cloud(), NETWORK)
        assert network.uplink_gb_per_hour == pytest.approx(
            NETWORK.uplink_gb_per_hour
        )

    def test_apply_shrinks_congested_uplink(self):
        report = CalibrationReport(
            job_name="j",
            throughput_scale=1.0,
            rates=(),
            observed_uplink_gb_h=NETWORK.uplink_gb_per_hour * 0.5,
        )
        _services, network = report.apply(public_cloud(), NETWORK)
        assert network.uplink_gb_per_hour == pytest.approx(
            NETWORK.uplink_gb_per_hour * 0.5
        )

    def test_throughput_scale_unwound(self, first_run):
        job8 = PlannerJob(name="scaled", input_gb=8.0, throughput_scale=2.0)
        _job, result = first_run
        report = calibrate(job8, result, NETWORK)
        observation = report.rate_for("ec2.m1.large")
        services, _network = report.apply(mispredicted_services(), NETWORK)
        rate = next(
            s.throughput_gb_per_hour for s in services if s.name == "ec2.m1.large"
        )
        # apply() divides the scale back out of the scaled observation.
        assert rate == pytest.approx(observation.mean_rate / 2.0)


class TestRecurring:
    def test_second_run_plans_correctly_from_the_start(self):
        # Paper Section 4.1's recurring-job mode: run one monitors and
        # adapts (Fig. 12); run two starts with the calibrated model and
        # needs no mid-flight correction.
        job = PlannerJob(name="kmeans", input_gb=8.0)
        result = run_recurring(
            job,
            mispredicted_services(),
            Goal.min_cost(deadline_hours=8.0),
            slow_world(),
            network=NETWORK,
        )
        assert result.first.completed
        assert result.second.completed
        assert result.first.replans >= 1
        assert result.second.replans == 0
        assert result.replans_eliminated >= 1
        assert result.second.deadline_met

    def test_calibrated_run_is_not_more_expensive(self):
        job = PlannerJob(name="kmeans", input_gb=8.0)
        result = run_recurring(
            job,
            mispredicted_services(),
            Goal.min_cost(deadline_hours=8.0),
            slow_world(),
            network=NETWORK,
        )
        # The calibrated plan can only do better (or equal): it faces
        # the same world with a correct model.
        assert result.second.total_cost <= result.first.total_cost + 0.5

    def test_well_predicted_job_gains_nothing(self):
        job = PlannerJob(name="kmeans", input_gb=8.0)
        result = run_recurring(
            job,
            public_cloud(),
            Goal.min_cost(deadline_hours=8.0),
            ActualConditions.as_predicted(),
            network=NETWORK,
        )
        assert result.first.replans == 0
        assert result.second.replans == 0
        assert result.second.total_cost == pytest.approx(
            result.first.total_cost, rel=1e-6
        )
