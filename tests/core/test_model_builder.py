"""Tests for the LP model builder: plan invariants across scenarios."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import hybrid_cloud, public_cloud, s3, ec2_m1_large
from repro.core import (
    Goal,
    NetworkConditions,
    PlannerJob,
    PlanningError,
    PlanningProblem,
    build_model,
)

NET = NetworkConditions.from_mbit_s(16.0)


def plan_for(problem):
    built = build_model(problem)
    solution = built.solve()
    assert solution.status.has_solution, solution.message
    return built.extract_plan(solution), built


def default_problem(**kwargs):
    defaults = dict(
        job=PlannerJob(name="t", input_gb=32.0),
        services=public_cloud(),
        network=NET,
        goal=Goal.min_cost(deadline_hours=6.0),
    )
    defaults.update(kwargs)
    return PlanningProblem(**defaults)


class TestPlanInvariants:
    def test_all_input_uploaded_processed_downloaded(self):
        plan, _ = plan_for(default_problem())
        job = PlannerJob(name="t", input_gb=32.0)
        assert plan.total_uploaded_gb() == pytest.approx(32.0, abs=1e-4)
        assert plan.total_map_gb() == pytest.approx(32.0, abs=1e-4)
        assert plan.total_reduce_gb() == pytest.approx(job.map_output_gb, abs=1e-4)
        assert plan.total_downloaded_gb() == pytest.approx(job.result_gb, abs=1e-4)

    def test_uplink_respected_per_interval(self):
        plan, _ = plan_for(default_problem())
        for interval in plan.intervals:
            assert interval.total_upload_gb <= NET.uplink_gb_per_hour + 1e-6

    def test_capacity_respected(self):
        plan, built = plan_for(default_problem())
        job = built.problem.job
        services = {s.name: s for s in built.problem.services}
        for interval in plan.intervals:
            per_service: dict[str, float] = {}
            for (src, dst), gb in interval.map_read_gb.items():
                per_service[dst] = per_service.get(dst, 0.0) + gb
            for name, gb in per_service.items():
                cap = interval.nodes.get(name, 0) * job.map_rate(services[name])
                assert gb <= cap * interval.duration_hours + 1e-6

    def test_deadline_met(self):
        plan, _ = plan_for(default_problem())
        assert plan.predicted_completion_hours <= 6.0 + 1e-6

    def test_solution_passes_model_self_check(self):
        problem = default_problem()
        built = build_model(problem)
        solution = built.solve()
        assert built.model.check_feasible(solution.values) == []

    def test_infeasible_deadline_detected(self):
        # 32 GB over a 16 Mbit/s uplink cannot finish in 2 hours.
        problem = default_problem(goal=Goal.min_cost(deadline_hours=2.0))
        built = build_model(problem)
        assert not built.solve().status.has_solution

    def test_cost_matches_breakdown(self):
        plan, _ = plan_for(default_problem())
        assert plan.predicted_cost == pytest.approx(
            sum(plan.predicted_cost_breakdown.values()), abs=1e-6
        )


class TestScenarioShapes:
    def test_local_cluster_cap_respected(self):
        plan, _ = plan_for(
            default_problem(
                services=hybrid_cloud(local_nodes=5),
                goal=Goal.min_cost(deadline_hours=8.0),
            )
        )
        assert plan.peak_nodes("local.cluster") <= 5

    def test_free_local_nodes_preferred_when_deadline_allows(self):
        # With a very loose deadline, the free cluster does everything.
        plan, _ = plan_for(
            default_problem(
                services=hybrid_cloud(local_nodes=5),
                goal=Goal.min_cost(deadline_hours=24.0),
            )
        )
        assert plan.predicted_cost < 1.0
        assert plan.peak_nodes("ec2.m1.large") == 0

    def test_tighter_deadline_never_cheaper(self):
        loose, _ = plan_for(default_problem(goal=Goal.min_cost(deadline_hours=12.0)))
        tight, _ = plan_for(default_problem(goal=Goal.min_cost(deadline_hours=6.0)))
        assert tight.predicted_cost >= loose.predicted_cost - 1e-6

    def test_constant_nodes_restriction_costs_more(self):
        free, _ = plan_for(default_problem())
        constant, _ = plan_for(default_problem(constant_nodes=True))
        assert constant.predicted_cost >= free.predicted_cost - 1e-6
        nodes = {
            tuple(sorted(i.nodes.items())) for i in constant.intervals
        }
        assert len(nodes) == 1  # identical allocation every interval

    def test_upload_fractions_enforced(self):
        plan, _ = plan_for(
            default_problem(
                upload_fractions={"s3": 0.25, "ec2.m1.large": 0.75},
                goal=Goal.min_cost(deadline_hours=8.0),
            )
        )
        assert plan.total_uploaded_gb("s3") == pytest.approx(8.0, abs=1e-3)
        assert plan.total_uploaded_gb("ec2.m1.large") == pytest.approx(24.0, abs=1e-3)

    def test_spot_estimates_shift_work_to_cheap_hours(self):
        spot = ec2_m1_large().replace(name="spot", is_spot=True)
        # Hours 0-5 expensive, 6-11 cheap.
        estimates = [0.34] * 6 + [0.05] * 6
        plan, _ = plan_for(
            default_problem(
                services=[spot, s3()],
                goal=Goal.min_cost(deadline_hours=12.0),
                spot_price_estimates={"spot": estimates},
            )
        )
        expensive_nodes = sum(
            i.total_nodes for i in plan.intervals if i.index <= 6
        )
        cheap_nodes = sum(i.total_nodes for i in plan.intervals if i.index > 6)
        assert cheap_nodes > expensive_nodes

    def test_min_time_goal_reaches_earliest_feasible(self):
        plan, _ = plan_for(
            default_problem(goal=Goal.min_time(budget_usd=40.0, horizon_hours=12))
        )
        # The uplink bounds completion below ~5 h; min-time should hit it.
        assert plan.predicted_completion_hours <= 6.0

    def test_min_time_respects_budget(self):
        plan, _ = plan_for(
            default_problem(goal=Goal.min_time(budget_usd=26.0, horizon_hours=12))
        )
        assert plan.predicted_cost <= 26.0 + 1e-6

    def test_replanning_from_partial_state(self):
        from repro.core import SystemState

        job = PlannerJob(name="t", input_gb=32.0)
        state = SystemState(
            hour=2.0,
            source_remaining_gb=16.0,
            stored_input={"ec2.m1.large": 4.0},
            map_done_gb=12.0,
            # Output of the completed map work is parked on EC2 disks.
            stored_output={"ec2.m1.large": 12.0 * job.map_output_ratio},
        )
        plan, _ = plan_for(
            default_problem(goal=Goal.min_cost(deadline_hours=4.0), state=state)
        )
        # Only the remaining halves move.
        assert plan.total_uploaded_gb() == pytest.approx(16.0, abs=1e-4)
        assert plan.total_map_gb() == pytest.approx(20.0, abs=1e-4)
        assert plan.intervals[0].start_hour == pytest.approx(2.0)


class TestStateValidation:
    def test_overfull_state_rejected(self):
        from repro.core import SystemState

        state = SystemState(
            source_remaining_gb=30.0,
            stored_input={"s3": 10.0},
            map_done_gb=10.0,
        )
        with pytest.raises(ValueError):
            build_model(default_problem(state=state))


@given(
    input_gb=st.floats(4.0, 96.0),
    deadline=st.integers(6, 20),
)
@settings(max_examples=12, deadline=None)
def test_property_conservation_across_random_jobs(input_gb, deadline):
    """Flow conservation holds for arbitrary job sizes and horizons."""
    upload_hours = input_gb / NET.uplink_gb_per_hour
    if deadline < upload_hours + 1.0:
        deadline = int(upload_hours + 2)
    problem = default_problem(
        job=PlannerJob(name="p", input_gb=input_gb),
        goal=Goal.min_cost(deadline_hours=float(deadline)),
    )
    built = build_model(problem)
    solution = built.solve()
    assert solution.status.has_solution
    plan = built.extract_plan(solution)
    assert plan.total_uploaded_gb() == pytest.approx(input_gb, rel=1e-4)
    assert plan.total_map_gb() == pytest.approx(input_gb, rel=1e-4)
    assert built.model.check_feasible(solution.values) == []
