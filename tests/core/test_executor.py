"""Unit tests for the fluid executor's charging and truncation rules."""

import pytest

from repro.accounting import CostCategory
from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, Planner, PlannerJob, PlanningProblem
from repro.core.conditions import ActualConditions
from repro.core.executor import FluidExecutor
from repro.core.problem import SystemState

NET = NetworkConditions.from_mbit_s(16.0)


@pytest.fixture
def setup():
    job = PlannerJob(name="x", input_gb=14.0)
    problem = PlanningProblem(
        job=job,
        services=public_cloud(),
        network=NET,
        goal=Goal.min_cost(deadline_hours=4.0),
    )
    plan = Planner().plan(problem)
    return job, problem, plan


class TestExecution:
    def test_interval_outcomes_track_plan(self, setup):
        job, problem, plan = setup
        executor = FluidExecutor(problem, ActualConditions.as_predicted())
        state = SystemState.initial(job)
        outcome = executor.execute_interval(plan.intervals[0], state)
        assert outcome.uploaded_gb == pytest.approx(
            plan.intervals[0].total_upload_gb, abs=1e-6
        )
        assert outcome.map_shortfall == pytest.approx(0.0, abs=1e-6)
        assert state.hour == pytest.approx(1.0)

    def test_full_plan_completes_job(self, setup):
        job, problem, plan = setup
        executor = FluidExecutor(problem, ActualConditions.as_predicted())
        state = SystemState.initial(job)
        for interval in plan.intervals:
            executor.execute_interval(interval, state)
        assert executor.is_complete(state)
        state.validate_against(job)

    def test_slow_nodes_cause_shortfall(self, setup):
        job, problem, plan = setup
        actual = ActualConditions(
            throughput_gb_per_hour={"ec2.m1.large": 0.1, "ec2.m1.xlarge": 0.1}
        )
        executor = FluidExecutor(problem, actual)
        state = SystemState.initial(job)
        busy = next(i for i in plan.intervals if i.map_gb > 0.5)
        for interval in plan.intervals:
            outcome = executor.execute_interval(interval, state)
            if interval is busy:
                assert outcome.map_shortfall > 0.5
                break

    def test_slow_uplink_truncates_uploads(self, setup):
        job, problem, plan = setup
        executor = FluidExecutor(problem, ActualConditions(uplink_factor=0.5))
        state = SystemState.initial(job)
        first = next(i for i in plan.intervals if i.total_upload_gb > 1.0)
        outcome = executor.execute_interval(first, state)
        assert outcome.uploaded_gb <= 0.5 * NET.uplink_gb_per_hour + 1e-6

    def test_compute_charges_match_nodes(self, setup):
        job, problem, plan = setup
        executor = FluidExecutor(problem, ActualConditions.as_predicted())
        state = SystemState.initial(job)
        for interval in plan.intervals:
            executor.execute_interval(interval, state)
        compute = sum(
            e.amount
            for e in executor.ledger
            if e.category is CostCategory.COMPUTE
        )
        assert compute == pytest.approx(
            0.34 * plan.total_node_hours("ec2.m1.large")
            + 0.68 * plan.total_node_hours("ec2.m1.xlarge"),
            rel=1e-6,
        )

    def test_never_negative_stocks(self, setup):
        job, problem, plan = setup
        executor = FluidExecutor(problem, ActualConditions.as_predicted())
        state = SystemState.initial(job)
        for interval in plan.intervals:
            executor.execute_interval(interval, state)
            for gb in (
                list(state.stored_input.values())
                + list(state.stored_output.values())
                + list(state.stored_result.values())
            ):
                assert gb >= -1e-9
            assert state.source_remaining_gb >= -1e-9
