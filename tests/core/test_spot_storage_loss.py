"""Tests for spot-instance storage volatility (Section 2.1 faults).

Data parked on spot-instance virtual disks dies with the instances when
an out-bid hour terminates them; the executor must rewind progress and
the controller must re-plan.
"""

import numpy as np
import pytest

from repro.cloud.catalog import ec2_m1_large, ec2_spot_m1_large, s3
from repro.cloud.spot import SpotTrace
from repro.core import (
    ActualConditions,
    CurrentPricePredictor,
    FluidExecutor,
    Goal,
    JobController,
    NetworkConditions,
    PlannerJob,
    PlanningProblem,
    SystemState,
)
from repro.core.plan import PlanInterval

NETWORK = NetworkConditions.from_mbit_s(16.0)


def step_trace(low=0.1, high=10.0, jump_at=2.0, days=3):
    prices = np.where(np.arange(days * 24.0) < jump_at, low, high)
    return SpotTrace(prices=prices, label="step")


def spot_problem(job=None):
    spot = ec2_spot_m1_large()  # can_store=True by default
    return PlanningProblem(
        job=job or PlannerJob(name="kmeans", input_gb=4.0),
        services=[spot, s3()],
        network=NETWORK,
        goal=Goal.min_cost(deadline_hours=8.0),
    )


def interval(index, nodes, **kwargs):
    defaults = dict(
        index=index,
        start_hour=float(index),
        duration_hours=1.0,
        nodes=nodes,
    )
    defaults.update(kwargs)
    return PlanInterval(**defaults)


class TestExecutorLossSemantics:
    def make_executor(self, trace, volatile=True):
        problem = spot_problem()
        actual = ActualConditions(
            spot_traces={"ec2.m1.large.spot": trace},
            spot_storage_volatile=volatile,
        )
        return FluidExecutor(problem, actual), problem

    def test_outbid_destroys_spot_stored_input(self):
        executor, problem = self.make_executor(step_trace(jump_at=0.0))
        executor.bids["ec2.m1.large.spot"] = 0.5  # below the 10.0 market
        state = SystemState(
            hour=0.0,
            source_remaining_gb=0.0,
            stored_input={"ec2.m1.large.spot": 3.0, "s3": 1.0},
        )
        outcome = executor.execute_interval(
            interval(0, {"ec2.m1.large.spot": 4}), state
        )
        assert outcome.outbid_services == ["ec2.m1.large.spot"]
        assert outcome.spot_data_lost_gb == pytest.approx(3.0)
        # Lost input returns to the source; the S3 copy survives.
        assert state.source_remaining_gb == pytest.approx(3.0)
        assert state.stored_input.get("ec2.m1.large.spot", 0.0) == 0.0
        assert state.stored_input["s3"] == pytest.approx(1.0)

    def test_outbid_rewinds_map_progress_for_lost_output(self):
        executor, problem = self.make_executor(step_trace(jump_at=0.0))
        executor.bids["ec2.m1.large.spot"] = 0.5
        job = problem.job
        lost_output = 2.0 * job.map_output_ratio
        state = SystemState(
            hour=0.0,
            source_remaining_gb=0.0,
            stored_input={"s3": 2.0},  # re-mappable copy still in the cloud
            stored_output={"ec2.m1.large.spot": lost_output},
            map_done_gb=2.0,
        )
        executor.execute_interval(
            interval(0, {"ec2.m1.large.spot": 4}), state
        )
        # Progress rewound so the lost map output gets recomputed — but
        # mapping may have also advanced during the hour from the S3 copy.
        assert state.stored_output.get("ec2.m1.large.spot", 0.0) == 0.0
        assert state.source_remaining_gb == pytest.approx(0.0)

    def test_no_loss_when_flag_disabled(self):
        executor, _problem = self.make_executor(
            step_trace(jump_at=0.0), volatile=False
        )
        executor.bids["ec2.m1.large.spot"] = 0.5
        state = SystemState(
            hour=0.0,
            source_remaining_gb=0.0,
            stored_input={"ec2.m1.large.spot": 3.0, "s3": 1.0},
        )
        outcome = executor.execute_interval(
            interval(0, {"ec2.m1.large.spot": 4}), state
        )
        assert outcome.spot_data_lost_gb == 0.0
        assert state.stored_input["ec2.m1.large.spot"] == pytest.approx(3.0)

    def test_running_instances_keep_their_disks(self):
        executor, _problem = self.make_executor(step_trace(jump_at=48.0))
        executor.bids["ec2.m1.large.spot"] = 0.5  # market is 0.1: survives
        state = SystemState(
            hour=0.0,
            source_remaining_gb=0.0,
            stored_input={"ec2.m1.large.spot": 3.0},
        )
        outcome = executor.execute_interval(
            interval(0, {"ec2.m1.large.spot": 4}), state
        )
        assert outcome.spot_data_lost_gb == 0.0
        assert outcome.outbid_services == []

    def test_non_spot_storage_never_volatile(self):
        executor, _problem = self.make_executor(step_trace(jump_at=0.0))
        state = SystemState(
            hour=0.0, source_remaining_gb=0.0, stored_input={"s3": 4.0}
        )
        executor.execute_interval(interval(0, {}), state)
        assert state.stored_input["s3"] == pytest.approx(4.0)


class TestControllerRecovery:
    def test_controller_replans_after_spot_loss_and_finishes(self):
        # Spot price jumps mid-run: work/data on spot instances is lost,
        # the controller re-plans and still completes the job.
        trace = step_trace(low=0.1, high=10.0, jump_at=2.0, days=3)
        spot = ec2_spot_m1_large()
        job = PlannerJob(name="kmeans", input_gb=4.0)
        # On-demand EC2 is available as the fallback: once the market
        # spikes past the bid cap, re-planning shifts the work there.
        controller = JobController(
            job,
            [spot, ec2_m1_large(), s3()],
            Goal.min_cost(deadline_hours=10.0),
            network=NETWORK,
            predictor=CurrentPricePredictor(),
            trace=trace,
        )
        actual = ActualConditions(
            spot_traces={spot.name: trace}, spot_storage_volatile=True
        )
        result = controller.run(actual)
        assert result.completed
        assert result.replans >= 1
