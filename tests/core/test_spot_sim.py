"""Tests for the Fig. 14 spot simulation harness."""

import pytest

from repro.cloud import aws_like_trace, electricity_like_trace
from repro.cloud.traces import constant_trace
from repro.core import (
    CurrentPricePredictor,
    OptimalPredictor,
    PlannerJob,
)
from repro.core.spot_sim import (
    run_regular_baseline,
    run_spot_scenario,
    spot_services,
)

JOB = PlannerJob(name="kmeans", input_gb=16.0)


class TestSpotServices:
    def test_spot_nodes_hold_no_plan_data_by_default(self):
        services = spot_services()
        spot = next(s for s in services if s.is_spot)
        assert not spot.can_store  # out-bid termination would lose data

    def test_opt_in_storage_on_spot_nodes(self):
        services = spot_services(storage_on_spot_nodes=True)
        spot = next(s for s in services if s.is_spot)
        assert spot.can_store


class TestScenarios:
    def test_regular_baseline_deterministic(self):
        a = run_regular_baseline(JOB, deadline_hours=8.0)
        b = run_regular_baseline(JOB, deadline_hours=8.0)
        assert a.costs == b.costs
        assert a.label == "regular"

    def test_flat_trace_costs_floor_price(self):
        trace = constant_trace(0.16, days=4)
        result = run_spot_scenario(
            JOB,
            trace,
            CurrentPricePredictor(),
            deadline_hours=8.0,
            start_offsets=[24.0],
        )
        # ~37 node-hours at $0.16 (16 GB needs 16/0.44 = 36.4 node-h).
        assert result.costs[0] == pytest.approx(37 * 0.16, rel=0.08)

    def test_spot_cheaper_than_regular(self):
        trace = aws_like_trace(days=5, seed=11)
        regular = run_regular_baseline(JOB, deadline_hours=8.0)
        spot = run_spot_scenario(
            JOB,
            trace,
            OptimalPredictor(),
            deadline_hours=8.0,
            start_offsets=[24.0, 48.0],
        )
        assert spot.summary["average"] < 0.7 * regular.costs[0]

    def test_oracle_not_beaten_by_p0(self):
        trace = electricity_like_trace(days=6, seed=11)
        offsets = [24.0, 48.0, 72.0]
        opt = run_spot_scenario(
            JOB, trace, OptimalPredictor(), deadline_hours=10.0, start_offsets=offsets
        )
        p0 = run_spot_scenario(
            JOB, trace, CurrentPricePredictor(), deadline_hours=10.0,
            start_offsets=offsets,
        )
        assert p0.summary["average"] >= opt.summary["average"] - 0.3

    def test_default_offsets_cover_trace(self):
        trace = aws_like_trace(days=4, seed=1)
        result = run_spot_scenario(
            JOB, trace, CurrentPricePredictor(), deadline_hours=8.0
        )
        # Days 1..(4 - deadline/24), one run per day.
        assert len(result.costs) >= 2

    def test_summary_fields(self):
        trace = constant_trace(0.2, days=3)
        result = run_spot_scenario(
            JOB, trace, CurrentPricePredictor(), deadline_hours=8.0,
            start_offsets=[24.0],
        )
        summary = result.summary
        assert set(summary) == {"average", "maximum", "stddev"}
        assert summary["stddev"] == pytest.approx(0.0, abs=1e-9)
