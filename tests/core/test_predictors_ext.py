"""Tests for the extended spot predictors and bidding strategies."""

import numpy as np
import pytest

from repro.cloud.spot import SpotTrace
from repro.cloud.traces import aws_like_trace, constant_trace, electricity_like_trace
from repro.core import (
    Ar1Predictor,
    CurrentPricePredictor,
    EwmaPredictor,
    MarginBidder,
    QuantilePredictor,
    SeasonalNaivePredictor,
    WindowMaxPredictor,
    extended_predictor_suite,
    forecast_errors,
)


@pytest.fixture(scope="module")
def flat():
    return constant_trace(0.2, days=10)


@pytest.fixture(scope="module")
def diurnal():
    return electricity_like_trace(days=20, seed=3)


@pytest.fixture(scope="module")
def choppy():
    return aws_like_trace(days=20, seed=3)


class TestEwma:
    def test_flat_trace_recovers_price(self, flat):
        estimate = EwmaPredictor().estimate(flat, 100.0, 5)
        assert np.allclose(estimate, 0.2)

    def test_estimate_is_flat_over_horizon(self, choppy):
        estimate = EwmaPredictor().estimate(choppy, 100.0, 12)
        assert np.allclose(estimate, estimate[0])

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=1.5)

    def test_high_alpha_tracks_recent_price(self):
        prices = np.where(np.arange(48.0) < 40, 0.1, 1.0)  # late jump
        trace = SpotTrace(prices=prices, label="step")
        fast = EwmaPredictor(alpha=0.9).estimate(trace, 47.0, 1)[0]
        slow = EwmaPredictor(alpha=0.05).estimate(trace, 47.0, 1)[0]
        assert fast > slow


class TestSeasonalNaive:
    def test_diurnal_trace_beats_p0_on_long_horizon(self, diurnal):
        seasonal = forecast_errors(SeasonalNaivePredictor(), diurnal)
        p0 = forecast_errors(CurrentPricePredictor(), diurnal)
        assert seasonal["mae"] < p0["mae"]

    def test_flat_trace_is_exact(self, flat):
        errors = forecast_errors(SeasonalNaivePredictor(), flat)
        assert errors["mae"] == pytest.approx(0.0, abs=1e-12)

    def test_lookback_validation(self):
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(lookback_days=0)

    def test_no_history_falls_back_to_current(self, diurnal):
        estimate = SeasonalNaivePredictor(5).estimate(diurnal, 0.0, 3)
        assert np.allclose(estimate, diurnal.price_at(0.0))


class TestAr1:
    def test_flat_trace_recovers_price(self, flat):
        estimate = Ar1Predictor().estimate(flat, 100.0, 8)
        assert np.allclose(estimate, 0.2, atol=1e-9)

    def test_forecast_reverts_toward_mean(self, choppy):
        # After a spike, long-horizon forecasts should relax downward
        # toward the long-run mean, not persist the spike.
        rng = np.random.default_rng(0)
        prices = 0.2 + 0.01 * rng.standard_normal(120)
        prices[-1] = 1.0  # spike now
        trace = SpotTrace(prices=np.abs(prices), label="spike")
        estimate = Ar1Predictor().estimate(trace, 119.0, 24)
        assert estimate[-1] < estimate[0]
        assert estimate[-1] < 0.6

    def test_estimates_never_negative(self, choppy):
        estimate = Ar1Predictor().estimate(choppy, 200.0, 48)
        assert np.all(estimate >= 0.0)

    def test_history_validation(self):
        with pytest.raises(ValueError):
            Ar1Predictor(history_hours=4)


class TestQuantile:
    def test_full_quantile_matches_window_max(self, diurnal):
        q100 = QuantilePredictor(window_days=5, quantile=1.0)
        wmax = WindowMaxPredictor(window_days=5)
        now = 24.0 * 7
        assert np.allclose(
            q100.estimate(diurnal, now, 24), wmax.estimate(diurnal, now, 24)
        )

    def test_lower_quantile_gives_lower_estimates(self, choppy):
        now = 24.0 * 7
        q50 = QuantilePredictor(5, 0.5).estimate(choppy, now, 24)
        q100 = QuantilePredictor(5, 1.0).estimate(choppy, now, 24)
        assert np.all(q50 <= q100 + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantilePredictor(0, 0.5)
        with pytest.raises(ValueError):
            QuantilePredictor(5, 0.0)


class TestMarginBidder:
    def test_estimates_pass_through(self, diurnal):
        inner = CurrentPricePredictor()
        wrapped = MarginBidder(inner, margin=0.5)
        now = 100.0
        assert np.allclose(
            wrapped.estimate(diurnal, now, 6), inner.estimate(diurnal, now, 6)
        )

    def test_bid_gains_margin(self, diurnal):
        inner = CurrentPricePredictor()
        wrapped = MarginBidder(inner, margin=0.5)
        now = 100.0
        assert wrapped.bid(diurnal, now) == pytest.approx(
            inner.bid(diurnal, now) * 1.5
        )

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            MarginBidder(CurrentPricePredictor(), margin=-0.1)

    def test_name_composition(self):
        wrapped = MarginBidder(CurrentPricePredictor(), margin=0.2)
        assert wrapped.name == "p0+20%"


class TestForecastErrors:
    def test_oracle_has_zero_error(self, choppy):
        from repro.core import OptimalPredictor

        errors = forecast_errors(OptimalPredictor(), choppy)
        assert errors["mae"] == pytest.approx(0.0, abs=1e-12)
        assert errors["rmse"] == pytest.approx(0.0, abs=1e-12)

    def test_rmse_at_least_mae(self, choppy):
        for predictor in extended_predictor_suite():
            errors = forecast_errors(predictor, choppy)
            assert errors["rmse"] >= errors["mae"] - 1e-12

    def test_too_short_trace_rejected(self):
        trace = constant_trace(0.2, days=1)
        with pytest.raises(ValueError, match="too short"):
            forecast_errors(CurrentPricePredictor(), trace, horizon_hours=48)

    def test_suite_names_unique(self):
        names = [p.name for p in extended_predictor_suite()]
        assert len(set(names)) == len(names)
