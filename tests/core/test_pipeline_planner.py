"""Tests for multi-stage pipeline planning and failure-injected execution."""

import numpy as np
import pytest

from repro.cloud import public_cloud
from repro.core import (
    Goal,
    NetworkConditions,
    PipelinePlanningError,
    PlannerJob,
    RetentionPolicy,
    StorageTier,
    estimate_run_distribution,
    plan_pipeline,
    run_pipeline_with_failures,
)
from repro.pig import compile_script

NETWORK = NetworkConditions.from_mbit_s(16.0)

CHEAP = StorageTier("ec2-disk", 1e-4, loss_per_hour=0.02)
DURABLE = StorageTier("s3", 3e-4, loss_per_hour=0.0)


def two_stage_jobs(input_gb=8.0):
    pipeline = compile_script(
        "a  = LOAD 'in' AS (k:chararray, v:int);\n"
        "g1 = GROUP a BY k;\n"
        "c1 = FOREACH g1 GENERATE group AS k, SUM(a.v) AS t;\n"
        "g2 = GROUP c1 BY t;\n"
        "c2 = FOREACH g2 GENERATE group, COUNT(c1) AS n;\n"
        "STORE c2 INTO 'out';"
    )
    return pipeline.to_planner_jobs({"in": input_gb})


@pytest.fixture(scope="module")
def pipeline_plan():
    return plan_pipeline(
        two_stage_jobs(),
        public_cloud(),
        Goal.min_cost(deadline_hours=8.0),
        NETWORK,
        tiers=[CHEAP, DURABLE],
    )


class TestPlanPipeline:
    def test_stage_count_matches_jobs(self, pipeline_plan):
        assert len(pipeline_plan.stages) == 2

    def test_total_within_deadline(self, pipeline_plan):
        assert pipeline_plan.total_planned_hours <= 8.0 + 1e-6

    def test_later_stage_skips_wan_upload(self, pipeline_plan):
        # Stage 2's input starts in the cloud, so its plan uploads nothing.
        stage2 = pipeline_plan.stages[1]
        assert stage2.plan.total_uploaded_gb() == pytest.approx(0.0, abs=1e-6)

    def test_stage_profiles_match_plans(self, pipeline_plan):
        for stage in pipeline_plan.stages:
            assert stage.profile.exec_cost == pytest.approx(
                stage.plan.predicted_cost
            )
            assert stage.profile.exec_hours == pytest.approx(
                stage.plan.predicted_completion_hours
            )

    def test_expected_cost_at_least_planned(self, pipeline_plan):
        assert (
            pipeline_plan.expected_cost
            >= pipeline_plan.total_planned_cost - 1e-9
        )

    def test_describe_lists_stages_and_tiers(self, pipeline_plan):
        text = pipeline_plan.describe()
        assert "stage0" in text and "tier=" in text

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError, match="no stages"):
            plan_pipeline(
                [], public_cloud(), Goal.min_cost(deadline_hours=4.0), NETWORK
            )

    def test_min_time_goal_rejected(self):
        with pytest.raises(ValueError, match="min-cost"):
            plan_pipeline(
                two_stage_jobs(),
                public_cloud(),
                Goal.min_time(budget_usd=50.0),
                NETWORK,
            )

    def test_impossible_deadline_raises(self):
        # 32 GB over a 16 Mbit/s uplink needs ~4.5 h just to upload.
        jobs = [PlannerJob(name="big", input_gb=32.0)]
        with pytest.raises(Exception):
            plan_pipeline(
                jobs,
                public_cloud(),
                Goal.min_cost(deadline_hours=2.0),
                NETWORK,
            )

    def test_default_tier_is_free_durable(self):
        plan = plan_pipeline(
            two_stage_jobs(),
            public_cloud(),
            Goal.min_cost(deadline_hours=8.0),
            NETWORK,
        )
        assert all(s.tier.is_durable for s in plan.stages)
        assert plan.expected_cost == pytest.approx(
            plan.total_planned_cost, rel=1e-6
        )


class TestFailureInjectedExecution:
    def test_durable_run_is_deterministic(self, pipeline_plan):
        safe_plan = plan_pipeline(
            two_stage_jobs(),
            public_cloud(),
            Goal.min_cost(deadline_hours=8.0),
            NETWORK,
        )
        first = run_pipeline_with_failures(safe_plan, 1)
        second = run_pipeline_with_failures(safe_plan, 2)
        assert first.losses == second.losses == 0
        assert first.cost == pytest.approx(second.cost)
        assert first.stage_attempts == [1, 1]

    def test_seed_reproducibility(self, pipeline_plan):
        a = run_pipeline_with_failures(pipeline_plan, 123)
        b = run_pipeline_with_failures(pipeline_plan, 123)
        assert a.cost == pytest.approx(b.cost)
        assert a.stage_attempts == b.stage_attempts

    def test_losses_force_reexecution(self):
        # A very lossy tier guarantees recoveries at modest stage length.
        lossy = StorageTier("lossy", 0.0, loss_per_hour=0.5)
        plan = plan_pipeline(
            two_stage_jobs(),
            public_cloud(),
            Goal.min_cost(deadline_hours=8.0),
            NETWORK,
            tiers=[lossy],
        )
        rng = np.random.default_rng(5)
        results = [run_pipeline_with_failures(plan, rng) for _ in range(30)]
        assert any(r.losses > 0 for r in results)
        for result in results:
            if result.losses:
                assert sum(result.stage_attempts) > len(plan.stages)
                assert result.cost > plan.total_planned_cost - 1e-9

    def test_hopeless_loss_rate_raises(self):
        doomed = StorageTier("doomed", 0.0, loss_per_hour=1.0)
        plan = plan_pipeline(
            two_stage_jobs(),
            public_cloud(),
            Goal.min_cost(deadline_hours=8.0),
            NETWORK,
            tiers=[doomed],
        )
        with pytest.raises(RuntimeError, match="did not converge"):
            run_pipeline_with_failures(plan, 0)

    def test_distribution_mean_tracks_expectation(self):
        # Monte Carlo mean should land near the analytic expectation
        # (the analytic model is approximate; agree within ~20%).
        lossy = StorageTier("lossy", 1e-4, loss_per_hour=0.10)
        plan = plan_pipeline(
            two_stage_jobs(input_gb=8.0),
            public_cloud(),
            Goal.min_cost(deadline_hours=8.0),
            NETWORK,
            tiers=[lossy],
            retention=RetentionPolicy.DISCARD_AFTER_USE,
        )
        dist = estimate_run_distribution(plan, samples=400, seed=11)
        assert dist["mean_cost"] == pytest.approx(
            plan.expected_cost, rel=0.20
        )
        assert dist["mean_cost"] >= plan.total_planned_cost - 1e-9

    def test_distribution_summary_fields(self, pipeline_plan):
        dist = estimate_run_distribution(pipeline_plan, samples=20)
        assert set(dist) == {
            "mean_cost",
            "max_cost",
            "std_cost",
            "mean_hours",
            "loss_run_fraction",
        }
        assert dist["max_cost"] >= dist["mean_cost"] - 1e-9
