"""Unit and property tests for the reliability / recovery-cost model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PipelineReliabilityModel,
    RetentionPolicy,
    StageProfile,
    StorageTier,
    choose_tiers,
    durable_premium_break_even,
)


def uniform_stages(n, cost=5.0, hours=1.0, gb=4.0):
    return [
        StageProfile(f"s{i}", exec_cost=cost, exec_hours=hours, output_gb=gb)
        for i in range(n)
    ]


CHEAP = StorageTier("cheap", cost_gb_hour=1e-4, loss_per_hour=0.02)
DURABLE = StorageTier("durable", cost_gb_hour=3e-4, loss_per_hour=0.0)


class TestStorageTier:
    def test_loss_probability_bounds(self):
        with pytest.raises(ValueError):
            StorageTier("bad", 0.0, loss_per_hour=1.5)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            StorageTier("bad", -1.0, loss_per_hour=0.0)

    def test_loss_within_compounds(self):
        tier = StorageTier("t", 0.0, loss_per_hour=0.5)
        assert tier.loss_within(1.0) == pytest.approx(0.5)
        assert tier.loss_within(2.0) == pytest.approx(0.75)
        assert tier.loss_within(0.0) == 0.0

    def test_durable_classification(self):
        assert DURABLE.is_durable
        assert not CHEAP.is_durable

    def test_from_replication_loss_and_price(self):
        base = StorageTier.from_replication("r1", 1e-4, 1, node_loss_per_hour=1e-2)
        tripled = StorageTier.from_replication("r3", 1e-4, 3, node_loss_per_hour=1e-2)
        assert tripled.loss_per_hour == pytest.approx(1e-6)
        assert tripled.cost_gb_hour == pytest.approx(3e-4)
        assert base.loss_per_hour == pytest.approx(1e-2)

    def test_from_replication_validates_probability(self):
        with pytest.raises(ValueError):
            StorageTier.from_replication("bad", 1e-4, 2, node_loss_per_hour=1.0)


class TestExpectedCostModel:
    def test_no_loss_means_plain_sum(self):
        stages = uniform_stages(3)
        model = PipelineReliabilityModel(stages)
        outcome = model.evaluate([DURABLE] * 3)
        assert outcome.execution_cost == pytest.approx(15.0)
        assert outcome.total_hours == pytest.approx(3.0)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            PipelineReliabilityModel([])

    def test_assignment_arity_checked(self):
        model = PipelineReliabilityModel(uniform_stages(3))
        with pytest.raises(ValueError, match="3 stages"):
            model.evaluate([DURABLE])

    def test_loss_inflates_cost(self):
        stages = uniform_stages(3)
        model = PipelineReliabilityModel(stages)
        risky = model.evaluate([CHEAP] * 3)
        safe = model.evaluate([DURABLE] * 3)
        assert risky.execution_cost > safe.execution_cost

    def test_discard_policy_costs_more_than_keep_all(self):
        # Discarding consumed intermediates widens the recovery scope.
        stages = uniform_stages(5)
        discard = PipelineReliabilityModel(
            stages, RetentionPolicy.DISCARD_AFTER_USE
        ).evaluate([CHEAP] * 5)
        keep = PipelineReliabilityModel(
            stages, RetentionPolicy.KEEP_ALL
        ).evaluate([CHEAP] * 5)
        assert discard.execution_cost >= keep.execution_cost - 1e-9

    def test_recovery_scope_grows_with_stage_index_under_discard(self):
        stages = uniform_stages(4)
        model = PipelineReliabilityModel(
            stages, RetentionPolicy.DISCARD_AFTER_USE
        )
        outcome = model.evaluate([CHEAP] * 4)
        scopes = [s.recovery_scope for s in outcome.stages]
        assert scopes == [0, 1, 2, 3]

    def test_durable_checkpoint_resets_cascade(self):
        stages = uniform_stages(4)
        model = PipelineReliabilityModel(stages, RetentionPolicy.KEEP_ALL)
        # Durable after stage 1: stage 3's loss only re-runs stages 2+.
        assignment = [CHEAP, DURABLE, CHEAP, CHEAP]
        outcome = model.evaluate(assignment)
        assert outcome.stages[3].recovery_scope == 1
        all_cheap = model.evaluate([CHEAP] * 4)
        assert outcome.execution_cost < all_cheap.execution_cost

    def test_storage_cost_scales_with_retention(self):
        stages = uniform_stages(4)
        keep = PipelineReliabilityModel(stages, RetentionPolicy.KEEP_ALL)
        discard = PipelineReliabilityModel(
            stages, RetentionPolicy.DISCARD_AFTER_USE
        )
        assert (
            keep.evaluate([DURABLE] * 4).storage_cost
            > discard.evaluate([DURABLE] * 4).storage_cost
        )

    def test_certain_loss_is_infinite(self):
        stages = uniform_stages(2)
        doomed = StorageTier("doomed", 0.0, loss_per_hour=1.0)
        outcome = PipelineReliabilityModel(stages).evaluate([doomed, doomed])
        assert math.isinf(outcome.total_cost)


class TestChooseTiers:
    def test_free_durable_always_wins(self):
        free_durable = StorageTier("free-durable", 0.0, 0.0)
        choice = choose_tiers(uniform_stages(3), [CHEAP, free_durable])
        assert choice.tier_names == ("free-durable",) * 3

    def test_expensive_durable_skipped_when_loss_tiny(self):
        barely_lossy = StorageTier("almost-safe", 1e-6, loss_per_hour=1e-7)
        pricey = StorageTier("pricey", 10.0, loss_per_hour=0.0)
        choice = choose_tiers(uniform_stages(3), [barely_lossy, pricey])
        assert choice.tier_names == ("almost-safe",) * 3

    def test_no_tiers_rejected(self):
        with pytest.raises(ValueError):
            choose_tiers(uniform_stages(2), [])

    def test_matches_brute_force(self):
        import itertools

        stages = [
            StageProfile("a", 2.0, 0.5, 1.0),
            StageProfile("b", 8.0, 2.0, 6.0),
            StageProfile("c", 1.0, 0.25, 0.5),
        ]
        tiers = [CHEAP, DURABLE]
        model = PipelineReliabilityModel(stages, RetentionPolicy.KEEP_ALL)
        brute = min(
            (
                model.evaluate(list(combo)).total_cost
                for combo in itertools.product(tiers, repeat=3)
            )
        )
        choice = choose_tiers(stages, tiers, RetentionPolicy.KEEP_ALL)
        assert choice.outcome.total_cost == pytest.approx(brute)

    def test_deep_pipeline_uses_pattern_fallback(self):
        # 24 stages x 3 tiers exceeds the exact-enumeration budget.
        tiers = [
            CHEAP,
            DURABLE,
            StorageTier("mid", 2e-4, loss_per_hour=1e-3),
        ]
        choice = choose_tiers(uniform_stages(24), tiers)
        assert len(choice.assignment) == 24
        assert choice.outcome.total_cost < math.inf

    def test_later_stages_prefer_durable_under_discard(self):
        # The paper's Section 2.1 claim: as the pipeline progresses,
        # reliable storage becomes the better buy.
        stages = uniform_stages(6, cost=10.0, hours=1.0, gb=50.0)
        cheap = StorageTier("cheap", 1e-5, loss_per_hour=0.01)
        durable = StorageTier("durable", 9e-4, loss_per_hour=0.0)
        choice = choose_tiers(
            stages, [cheap, durable], RetentionPolicy.DISCARD_AFTER_USE
        )
        names = choice.tier_names
        # Once the plan switches to durable it never switches back
        # (ignoring the final handoff stage, which has no exposure).
        switched = False
        for name in names[:-1]:
            if name == "durable":
                switched = True
            elif switched:
                pytest.fail(f"non-monotone tier pattern: {names}")


class TestBreakEvenPremium:
    def test_monotone_under_discard(self):
        stages = uniform_stages(5)
        premiums = durable_premium_break_even(stages, CHEAP)
        # Exposure-bearing stages: value of durability rises with index.
        assert all(
            premiums[i] <= premiums[i + 1] + 1e-12
            for i in range(len(premiums) - 2)
        )

    def test_final_stage_premium_zero(self):
        stages = uniform_stages(4)
        premiums = durable_premium_break_even(stages, CHEAP)
        assert premiums[-1] == pytest.approx(0.0)

    def test_reliable_input_no_premium_without_loss(self):
        safe = StorageTier("safe", 0.0, loss_per_hour=0.0)
        premiums = durable_premium_break_even(uniform_stages(3), safe)
        assert all(p == pytest.approx(0.0) for p in premiums)


class TestProperties:
    @given(
        n=st.integers(2, 6),
        loss=st.floats(0.0, 0.2),
        cost=st.floats(0.5, 20.0),
        hours=st.floats(0.1, 4.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_expected_cost_at_least_failure_free(self, n, loss, cost, hours):
        stages = uniform_stages(n, cost=cost, hours=hours)
        tier = StorageTier("t", 0.0, loss_per_hour=loss)
        outcome = PipelineReliabilityModel(stages).evaluate([tier] * n)
        assert outcome.execution_cost >= n * cost - 1e-9

    @given(
        loss_low=st.floats(0.0, 0.1),
        bump=st.floats(0.0, 0.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_cost_monotone_in_loss_rate(self, loss_low, bump):
        stages = uniform_stages(4)
        low = StorageTier("low", 0.0, loss_per_hour=loss_low)
        high = StorageTier("high", 0.0, loss_per_hour=min(loss_low + bump, 0.9))
        model = PipelineReliabilityModel(stages)
        assert (
            model.evaluate([high] * 4).execution_cost
            >= model.evaluate([low] * 4).execution_cost - 1e-9
        )

    @given(n=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_choice_never_worse_than_uniform(self, n):
        stages = uniform_stages(n)
        tiers = [CHEAP, DURABLE]
        choice = choose_tiers(stages, tiers)
        model = PipelineReliabilityModel(stages)
        for tier in tiers:
            assert (
                choice.outcome.total_cost
                <= model.evaluate([tier] * n).total_cost + 1e-9
            )
