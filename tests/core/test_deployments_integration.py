"""Integration tests: full discrete-event deployment strategies.

These exercise the complete stack (planner -> plan deployer -> MapReduce
engine -> storage layer -> fluid network -> ledger) on a scaled-down job
so they stay fast; the full-size runs live in `benchmarks/`.
"""

import pytest

from repro.cloud import local_cluster
from repro.core import (
    DeploymentScenario,
    run_conductor,
    run_hadoop_direct,
    run_hadoop_s3,
    run_hadoop_upload_first,
)


@pytest.fixture(scope="module")
def scenario():
    # 8 GB at 16 Mbit/s: upload ~1.14 h, everything finishes inside 3 h.
    return DeploymentScenario(input_gb=8.0, deadline_hours=3.0)


class TestBaselines:
    def test_hadoop_direct_is_streamed_and_upload_bound(self, scenario):
        # 16 nodes (7.04 GB/h) match the 2 MB/s uplink (7.03 GB/h): the
        # 8 GB job is upload-bound at ~1.14 h plus the processing tail.
        result = run_hadoop_direct(scenario, nodes=16)
        assert result.streamed
        assert result.runtime_s == pytest.approx(1.4 * 3600, rel=0.25)
        assert result.deadline_met

    def test_hadoop_s3_has_upload_phase_and_s3_charges(self, scenario):
        result = run_hadoop_s3(scenario, nodes=24)
        assert not result.streamed
        assert result.upload_s == pytest.approx(8 * 1024 / 2.0, rel=0.05)
        breakdown = result.cost_breakdown()
        assert breakdown["storage/S3"] > 0
        assert result.task_series[-1][1] >= 128  # all map tasks ran

    def test_upload_first_bills_the_upload_node_longer(self, scenario):
        result = run_hadoop_upload_first(scenario, nodes=24)
        from repro.accounting import CostCategory

        leases = [
            e.quantity for e in result.ledger if e.category is CostCategory.COMPUTE
        ]
        # One node (the HDFS host) is leased for the upload + processing,
        # the rest only for processing.
        assert max(leases) >= 2.0
        assert sorted(leases)[0] <= 2.0

    def test_costs_scale_with_node_count(self, scenario):
        small = run_hadoop_direct(scenario, nodes=6)
        large = run_hadoop_direct(scenario, nodes=18)
        assert large.total_cost > small.total_cost


class TestConductorDeployment:
    def test_plan_is_deployed_and_completes(self, scenario):
        result = run_conductor(scenario)
        assert result.plan is not None
        assert result.task_series[-1][1] >= 128
        # Deployment lands within 15% of the plan's completion estimate.
        planned = result.plan.predicted_completion_hours
        assert result.runtime_s / 3600 <= planned * 1.15 + 0.3

    def test_cost_close_to_plan(self, scenario):
        result = run_conductor(scenario)
        assert result.total_cost <= result.plan.predicted_cost * 1.4 + 0.5

    def test_conductor_not_worse_than_naive_big_cluster(self, scenario):
        conductor = run_conductor(scenario)
        naive = run_hadoop_s3(scenario, nodes=24)
        assert conductor.total_cost <= naive.total_cost * 1.05

    def test_hybrid_uses_free_local_nodes(self):
        scenario = DeploymentScenario(
            input_gb=8.0,
            deadline_hours=4.0,
            local=local_cluster(5),
            local_nodes=5,
        )
        result = run_conductor(scenario)
        # With 4 h of 5 free nodes (8.8 GB capacity), EC2 is barely needed.
        assert result.total_cost < 3.0

    def test_ledger_categories_consistent(self, scenario):
        result = run_conductor(scenario)
        assert result.total_cost == pytest.approx(
            sum(result.cost_breakdown().values())
        )
