"""Tests for the fluid executor and the adaptive job controller."""

import pytest

from repro.cloud import ec2_m1_large, public_cloud, s3
from repro.cloud.traces import constant_trace
from repro.core import (
    CurrentPricePredictor,
    Goal,
    NetworkConditions,
    PlannerJob,
    SystemState,
)
from repro.core.conditions import ActualConditions
from repro.core.controller import ControllerConfig, JobController
from repro.core.spot_sim import spot_services

NET = NetworkConditions.from_mbit_s(16.0)
JOB = PlannerJob(name="kmeans", input_gb=32.0)


def run_controller(services=None, actual=None, deadline=6.0, **kwargs):
    controller = JobController(
        JOB,
        services if services is not None else public_cloud(),
        Goal.min_cost(deadline_hours=deadline),
        network=NET,
        **kwargs,
    )
    return controller.run(actual or ActualConditions.as_predicted())


class TestNominalExecution:
    def test_completes_on_time_without_replans(self):
        result = run_controller()
        assert result.completed
        assert result.deadline_met
        assert result.replans == 0

    def test_cost_matches_plan_when_predictions_hold(self):
        result = run_controller()
        assert result.total_cost == pytest.approx(
            result.plans[0].predicted_cost, rel=0.02
        )

    def test_final_state_accounts_every_byte(self):
        result = run_controller()
        state = result.final_state
        assert state.map_done_gb == pytest.approx(JOB.input_gb, abs=1e-4)
        assert state.source_remaining_gb == pytest.approx(0.0, abs=1e-4)
        assert state.downloaded_gb == pytest.approx(JOB.result_gb, abs=1e-4)

    def test_ledger_total_equals_result_cost(self):
        result = run_controller()
        assert result.ledger.total() == pytest.approx(result.total_cost)

    def test_node_series_matches_outcomes(self):
        result = run_controller()
        assert len(result.node_series) == len(result.outcomes)


class TestAdaptation:
    def test_overestimated_rate_triggers_replan_and_recovery(self):
        believed = [
            s.replace(throughput_gb_per_hour=1.44)
            if s.name == "ec2.m1.large"
            else s
            for s in public_cloud()
        ]
        actual = ActualConditions(
            throughput_gb_per_hour={"ec2.m1.large": 0.44, "ec2.m1.xlarge": 0.3}
        )
        result = run_controller(services=believed, actual=actual)
        assert result.replans >= 1
        assert result.completed
        assert result.deadline_met  # the paper's Fig. 12 outcome

    def test_underestimated_rate_detected(self):
        # Derate every instance type so the planner cannot dodge the
        # misprediction by switching types.
        believed = [
            s.replace(throughput_gb_per_hour=s.throughput_gb_per_hour * 0.6)
            if s.can_compute
            else s
            for s in public_cloud()
        ]
        actual = ActualConditions(
            throughput_gb_per_hour={"ec2.m1.large": 0.44, "ec2.m1.xlarge": 0.85}
        )
        result = run_controller(services=believed, actual=actual)
        assert result.completed
        # Faster-than-believed nodes: observed rate deviation re-plans to
        # fewer nodes (paper: "react to under-estimation ... reducing the
        # number of EC2 instances").
        assert result.replans >= 1

    def test_degraded_uplink_still_completes(self):
        actual = ActualConditions(uplink_factor=0.7)
        result = run_controller(actual=actual, deadline=8.0)
        assert result.completed

    def test_severe_shortfall_recovered_with_many_nodes(self):
        # Nodes at 1/4 speed: the controller re-plans and brute-forces
        # the deadline with a much larger (and costlier) allocation.
        actual = ActualConditions(
            throughput_gb_per_hour={"ec2.m1.large": 0.1, "ec2.m1.xlarge": 0.1}
        )
        nominal = run_controller()
        result = run_controller(actual=actual)
        assert result.completed
        assert result.replans >= 1
        assert result.total_cost > 2.0 * nominal.total_cost

    def test_congested_uplink_misses_deadline_but_finishes(self):
        # Upload alone needs 32 / (7.03 * 0.5) = 9.1 h > the 6 h deadline;
        # no amount of compute can save it, so the horizon extends.
        actual = ActualConditions(uplink_factor=0.5)
        result = run_controller(actual=actual)
        assert result.completed
        assert result.completion_hours > 6.0
        assert not result.deadline_met


class TestSpotExecution:
    def test_constant_trace_behaves_like_on_demand(self):
        trace = constant_trace(0.16, days=3)
        controller = JobController(
            JOB,
            spot_services(),
            Goal.min_cost(deadline_hours=10.0),
            network=NET,
            predictor=CurrentPricePredictor(),
            trace=trace,
        )
        result = controller.run(
            ActualConditions(spot_traces={"ec2.m1.large.spot": trace})
        )
        assert result.completed
        # 73 node-hours at a flat $0.16 plus small S3 costs.
        assert result.total_cost == pytest.approx(73 * 0.16, rel=0.06)

    def test_spot_requires_predictor(self):
        with pytest.raises(ValueError):
            JobController(
                JOB, spot_services(), Goal.min_cost(deadline_hours=10.0), network=NET
            )

    def test_outbid_hours_are_not_charged(self):
        import numpy as np

        from repro.cloud import SpotTrace

        # Price spikes above any sane bid in hours 2-4.
        prices = np.full(72, 0.16)
        prices[2:5] = 10.0
        trace = SpotTrace(prices)
        controller = JobController(
            JOB,
            spot_services(),
            Goal.min_cost(deadline_hours=12.0),
            network=NET,
            predictor=CurrentPricePredictor(),
            trace=trace,
        )
        result = controller.run(
            ActualConditions(spot_traces={"ec2.m1.large.spot": trace})
        )
        assert result.completed
        # Nothing was ever charged at the spike price.
        assert all(e.unit_price < 1.0 for e in result.ledger)


class TestConfig:
    def test_max_replans_cap(self):
        config = ControllerConfig(max_replans=0)
        actual = ActualConditions(
            throughput_gb_per_hour={"ec2.m1.large": 0.2, "ec2.m1.xlarge": 0.2}
        )
        result = run_controller(actual=actual, config=config)
        assert result.replans <= 1  # only the plan-exhausted fallback
