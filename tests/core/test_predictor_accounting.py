"""Tests for spot predictors, the cost ledger, and plan objects."""

import numpy as np
import pytest

from repro.accounting import CostCategory, CostLedger, combine
from repro.cloud import SpotTrace, aws_like_trace, electricity_like_trace
from repro.core import (
    CurrentPricePredictor,
    OptimalPredictor,
    WindowMaxPredictor,
    predictor_suite,
)
from repro.core.plan import ExecutionPlan, PlanInterval, merge_plans


@pytest.fixture
def trace():
    # 3 days: hour-of-day pattern 0.1 + 0.01 * hour.
    prices = np.tile(0.1 + 0.01 * np.arange(24), 3)
    return SpotTrace(prices)


class TestPredictors:
    def test_optimal_returns_actual_future(self, trace):
        est = OptimalPredictor().estimate(trace, now_hour=30.0, horizon_hours=4)
        expected = [trace.price_at(30 + h) for h in range(4)]
        assert list(est) == pytest.approx(expected)

    def test_p0_is_flat_current(self, trace):
        est = CurrentPricePredictor().estimate(trace, now_hour=30.0, horizon_hours=5)
        assert np.all(est == trace.price_at(30.0))

    def test_window_max_tracks_hour_of_day(self, trace):
        est = WindowMaxPredictor(2).estimate(trace, now_hour=48.0, horizon_hours=24)
        # The trace repeats daily, so same-hour max == the actual price.
        expected = [trace.price_at(48 + h) for h in range(24)]
        assert list(est) == pytest.approx(expected)

    def test_window_max_captures_spikes(self):
        prices = np.full(96, 0.1)
        prices[30] = 0.5  # a spike at hour 30 (= hour-of-day 6, day 1)
        trace = SpotTrace(prices)
        est = WindowMaxPredictor(3).estimate(trace, now_hour=72.0, horizon_hours=24)
        assert est[6] == pytest.approx(0.5)  # remembered at that hour
        assert est[7] == pytest.approx(0.1)

    def test_window_requires_positive_days(self):
        with pytest.raises(ValueError):
            WindowMaxPredictor(0)

    def test_bid_defaults_to_first_estimate(self, trace):
        predictor = CurrentPricePredictor()
        assert predictor.bid(trace, 10.0) == pytest.approx(trace.price_at(10.0))

    def test_suite_contents(self):
        names = [p.name for p in predictor_suite(windows=(5, 13))]
        assert names == ["opt", "p0", "p5", "p13"]

    def test_optimal_never_costlier_than_others_on_average(self):
        # Sanity: averaged over many hours, the oracle's mean estimate is
        # a lower bound on the conservative window-max estimate.
        trace = electricity_like_trace(days=10, seed=5)
        opt = OptimalPredictor().estimate(trace, 120.0, 24).mean()
        pessimist = WindowMaxPredictor(5).estimate(trace, 120.0, 24).mean()
        assert pessimist >= opt - 1e-9


class TestCostLedger:
    def test_amounts_accumulate(self):
        ledger = CostLedger()
        ledger.add(0.0, "ec2", CostCategory.COMPUTE, "lease", 5, "node-h", 0.34)
        ledger.add(1.0, "s3", CostCategory.STORAGE, "GB-h", 10, "GB-h", 0.001)
        assert ledger.total() == pytest.approx(5 * 0.34 + 0.01)
        assert len(ledger) == 2

    def test_negative_inputs_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.add(0.0, "x", CostCategory.COMPUTE, "d", -1, "u", 1.0)
        with pytest.raises(ValueError):
            ledger.add(0.0, "x", CostCategory.COMPUTE, "d", 1, "u", -1.0)

    def test_groupings(self):
        ledger = CostLedger()
        ledger.add(0.0, "ec2", CostCategory.COMPUTE, "a", 1, "h", 1.0)
        ledger.add(0.0, "ec2", CostCategory.STORAGE, "b", 1, "h", 2.0)
        ledger.add(0.0, "s3", CostCategory.STORAGE, "c", 1, "h", 4.0)
        assert ledger.by_service() == {"ec2": 3.0, "s3": 4.0}
        assert ledger.by_category()[CostCategory.STORAGE] == pytest.approx(6.0)
        assert ledger.by_service_category()[("ec2", CostCategory.COMPUTE)] == 1.0

    def test_figure5_breakdown_mapping(self):
        ledger = CostLedger()
        ledger.add(0.0, "ec2.m1.large", CostCategory.COMPUTE, "lease", 10, "h", 0.34)
        ledger.add(0.0, "s3", CostCategory.STORAGE, "gbh", 100, "GB-h", 2e-4)
        ledger.add(0.0, "s3", CostCategory.REQUESTS, "puts", 32, "GB", 1.6e-4)
        ledger.add(0.0, "ec2.m1.large", CostCategory.TRANSFER, "out", 1, "GB", 0.1)
        breakdown = ledger.figure5_breakdown()
        assert breakdown["computation/EC2"] == pytest.approx(3.4)
        assert breakdown["storage/S3"] == pytest.approx(0.02 + 32 * 1.6e-4)
        assert breakdown["network transfer"] == pytest.approx(0.1)
        assert sum(breakdown.values()) == pytest.approx(ledger.total())

    def test_filter_and_combine(self):
        a, b = CostLedger(), CostLedger()
        a.add(0.0, "x", CostCategory.COMPUTE, "d", 1, "u", 1.0)
        b.add(0.0, "y", CostCategory.COMPUTE, "d", 1, "u", 2.0)
        merged = combine([a, b])
        assert merged.total() == pytest.approx(3.0)
        only_y = merged.filtered(lambda e: e.service == "y")
        assert only_y.total() == pytest.approx(2.0)


def _interval(index, start, nodes=0, upload=0.0):
    interval = PlanInterval(index=index, start_hour=start, duration_hours=1.0)
    if nodes:
        interval.nodes["ec2"] = nodes
    if upload:
        interval.upload_gb["s3"] = upload
    return interval


class TestExecutionPlan:
    def make_plan(self, intervals):
        return ExecutionPlan(
            intervals=intervals,
            predicted_cost=1.0,
            predicted_cost_breakdown={},
            predicted_completion_hours=float(len(intervals)),
            objective_value=1.0,
            solver_status="optimal",
            solve_seconds=0.0,
        )

    def test_interval_lookup(self):
        plan = self.make_plan([_interval(1, 0.0, 2), _interval(2, 1.0, 4)])
        assert plan.interval_at(0.5).index == 1
        assert plan.interval_at(1.0).index == 2
        assert plan.interval_at(99.0).index == 2  # clamps to the last

    def test_peak_and_node_hours(self):
        plan = self.make_plan([_interval(1, 0.0, 2), _interval(2, 1.0, 4)])
        assert plan.peak_nodes() == 4
        assert plan.total_node_hours() == pytest.approx(6.0)

    def test_requires_intervals(self):
        with pytest.raises(ValueError):
            self.make_plan([])

    def test_merge_plans_keeps_prefix(self):
        old = self.make_plan(
            [_interval(1, 0.0, 2), _interval(2, 1.0, 2), _interval(3, 2.0, 2)]
        )
        new = self.make_plan([_interval(1, 1.0, 8), _interval(2, 2.0, 8)])
        merged = merge_plans(old, new)
        series = merged.node_allocation_series()
        assert series == [(0.0, 2), (1.0, 8), (2.0, 8)]
