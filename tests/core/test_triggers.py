"""Replan trigger policies: taxonomy, precedence, edge cases."""

import numpy as np
import pytest

from repro.cloud import SpotTrace, public_cloud
from repro.core import (
    Goal,
    IntervalTrigger,
    NetworkConditions,
    PlannerJob,
    TriggerContext,
    default_trigger_policy,
    interval_trigger_policy,
)
from repro.core.conditions import ActualConditions
from repro.core.controller import ControllerConfig, JobController
from repro.core.executor import IntervalOutcome

NET = NetworkConditions.from_mbit_s(16.0)
JOB = PlannerJob(name="kmeans", input_gb=8.0)


def outcome(index=2, start_hour=1.0, duration=1.0, **kwargs):
    defaults = dict(
        nodes={"ec2.m1.large": 4},
        uploaded_gb=0.0,
        map_gb=4.0,
        reduce_gb=0.0,
        downloaded_gb=0.0,
        planned_map_gb=4.0,
        planned_upload_gb=0.0,
        cost=1.0,
    )
    defaults.update(kwargs)
    return IntervalOutcome(
        index=index, start_hour=start_hour, duration_hours=duration, **defaults
    )


def context(out, **kwargs):
    defaults = dict(
        config=ControllerConfig(),
        job=JOB,
        believed={"ec2.m1.large": 1.0},
    )
    defaults.update(kwargs)
    return TriggerContext(outcome=out, **defaults)


class TestDefaultPolicy:
    def test_quiet_interval_fires_nothing(self):
        ctx = context(outcome(observed_rates={"ec2.m1.large": 1.0}))
        assert default_trigger_policy().check(ctx) is None

    def test_eviction_has_highest_precedence(self):
        out = outcome(
            outbid_services=["ec2.m1.large.spot"],
            spot_data_lost_gb=2.0,
            map_gb=0.0,  # also a 100% shortfall
        )
        decision = default_trigger_policy().check(context(out))
        assert decision.kind == "eviction"
        assert "out-bid on ec2.m1.large.spot" in decision.reason

    def test_storage_loss_is_a_failure(self):
        decision = default_trigger_policy().check(
            context(outcome(spot_data_lost_gb=1.5))
        )
        assert decision.kind == "failure"
        assert "1.5 GB" in decision.reason

    def test_progress_shortfall_is_a_deviation(self):
        decision = default_trigger_policy().check(
            context(outcome(map_gb=2.0, planned_map_gb=4.0))
        )
        assert decision.kind == "deviation"
        assert "shortfall" in decision.reason

    def test_rate_deviation_uses_believed_rates(self):
        out = outcome(observed_rates={"ec2.m1.large": 2.0})
        decision = default_trigger_policy().check(
            context(out, believed={"ec2.m1.large": 1.0})
        )
        assert decision.kind == "deviation"
        assert "rate deviation" in decision.reason
        # Within threshold: quiet.
        ok = outcome(observed_rates={"ec2.m1.large": 1.05})
        assert default_trigger_policy().check(
            context(ok, believed={"ec2.m1.large": 1.0})
        ) is None

    def test_price_deviation_compares_estimate_to_trace(self):
        trace = SpotTrace(np.full(48, 0.40), label="spiked")
        out = outcome(index=1, observed_rates={})
        ctx = context(
            out,
            trace=trace,
            spot_names=("ec2.m1.large.spot",),
            estimates={"ec2.m1.large.spot": np.full(6, 0.16)},
        )
        decision = default_trigger_policy().check(ctx)
        assert decision.kind == "price"
        # Estimates that match the market stay quiet.
        ctx_ok = context(
            out,
            trace=trace,
            spot_names=("ec2.m1.large.spot",),
            estimates={"ec2.m1.large.spot": np.full(6, 0.40)},
        )
        assert default_trigger_policy().check(ctx_ok) is None


class TestIntervalTrigger:
    def test_fires_exactly_on_cadence_crossings(self):
        trigger = IntervalTrigger(6.0)
        fired = [
            bool(trigger.check(context(outcome(start_hour=float(h)))))
            for h in range(12)
        ]
        # Interval [5, 6) ends on the mark at 6; [11, 12) on the one at 12.
        assert fired == [False] * 5 + [True] + [False] * 5 + [True]

    def test_cadence_longer_than_interval(self):
        trigger = IntervalTrigger(2.5)
        hours = [h for h in range(10)
                 if trigger.check(context(outcome(start_hour=float(h))))]
        # Marks at 2.5, 5, 7.5, 10 land inside intervals [2,3), [4,5), ...
        assert hours == [2, 4, 7, 9]

    def test_interval_policy_ignores_everything_else(self):
        policy = interval_trigger_policy(6.0)
        noisy = outcome(
            start_hour=1.0,
            outbid_services=["ec2.m1.large.spot"],
            spot_data_lost_gb=3.0,
            map_gb=0.0,
            observed_rates={"ec2.m1.large": 9.0},
        )
        assert policy.check(context(noisy)) is None

    def test_rejects_nonpositive_cadence(self):
        with pytest.raises(ValueError):
            IntervalTrigger(0.0)


class TestControllerRunStepping:
    def controller(self, **kwargs):
        return JobController(
            JOB,
            public_cloud(),
            Goal.min_cost(deadline_hours=4.0),
            network=NET,
            **kwargs,
        )

    def test_stepping_matches_run(self):
        actual = ActualConditions(
            throughput_gb_per_hour={"ec2.m1.large": 0.44, "ec2.m1.xlarge": 0.3}
        )
        whole = self.controller().run(actual)
        run = self.controller().start(actual)
        outcomes = []
        while (out := run.step()) is not None:
            outcomes.append(out)
        stepped = run.result()
        assert stepped.completed == whole.completed
        assert stepped.replans == whole.replans
        assert stepped.total_cost == pytest.approx(whole.total_cost)
        assert [o.index for o in outcomes] == [o.index for o in whole.outcomes]

    def test_replan_records_name_their_trigger(self):
        actual = ActualConditions(
            throughput_gb_per_hour={"ec2.m1.large": 0.44, "ec2.m1.xlarge": 0.3}
        )
        result = self.controller().run(actual)
        assert result.replans >= 1
        assert len(result.replan_records) == result.replans
        assert len(result.plans) == result.replans + 1
        for record in result.replan_records:
            assert record.kind in (
                "interval", "deviation", "price", "eviction", "failure",
                "capacity", "exhausted", "external",
            )
            assert result.plans[record.plan_index] is not None

    def test_request_replan_external(self):
        run = self.controller().start()
        assert run.step() is not None
        assert run.request_replan("operator asked", kind="external")
        run.step()
        assert any(r.kind == "external" for r in run.replan_records)

    def test_request_replan_refused_when_done(self):
        controller = self.controller()
        run = controller.start()
        while run.step() is not None:
            pass
        assert run.done
        assert not run.request_replan("too late")

    def test_request_replan_respects_cap(self):
        controller = self.controller(config=ControllerConfig(max_replans=0))
        run = controller.start()
        run.step()
        assert not run.request_replan("never allowed")
