"""Tests for the planning problem vocabulary (jobs, goals, network, state)."""

import math

import pytest

from repro.cloud import public_cloud
from repro.core import (
    Goal,
    GoalKind,
    NetworkConditions,
    PlannerJob,
    PlanningProblem,
    SystemState,
)


class TestPlannerJob:
    def test_derived_sizes(self):
        job = PlannerJob(input_gb=32.0, map_output_ratio=0.01, reduce_output_ratio=0.5)
        assert job.map_output_gb == pytest.approx(0.32)
        assert job.result_gb == pytest.approx(0.16)

    def test_rates_scale(self):
        job = PlannerJob(input_gb=32.0, throughput_scale=2.0, reduce_speed_factor=4.0)
        service = public_cloud()[0]
        assert job.map_rate(service) == pytest.approx(0.88)
        assert job.reduce_rate(service) == pytest.approx(0.88 * 4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"input_gb": 0.0},
            {"input_gb": -1.0},
            {"map_output_ratio": -0.1},
            {"throughput_scale": 0.0},
            {"reduce_speed_factor": 0.0},
        ],
    )
    def test_invalid_jobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PlannerJob(**{"input_gb": 32.0, **kwargs})


class TestGoal:
    def test_min_cost(self):
        goal = Goal.min_cost(deadline_hours=6.0)
        assert goal.kind is GoalKind.MINIMIZE_COST
        assert goal.deadline_hours == 6.0

    def test_min_time(self):
        goal = Goal.min_time(budget_usd=30.0, horizon_hours=12.0)
        assert goal.kind is GoalKind.MINIMIZE_TIME
        assert goal.budget_usd == 30.0
        assert goal.deadline_hours == 12.0

    def test_invalid_goals(self):
        with pytest.raises(ValueError):
            Goal.min_cost(deadline_hours=0)
        with pytest.raises(ValueError):
            Goal.min_time(budget_usd=-5)


class TestNetworkConditions:
    def test_paper_default_uplink(self):
        net = NetworkConditions()
        assert net.uplink_gb_per_hour == pytest.approx(7.03, abs=0.01)

    def test_from_mbit(self):
        net = NetworkConditions.from_mbit_s(8.0)
        assert net.uplink_gb_per_hour == pytest.approx(3.52, abs=0.01)
        assert net.downlink_gb_per_hour == pytest.approx(3.52, abs=0.01)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            NetworkConditions(uplink_gb_per_hour=0.0)


class TestSystemState:
    def test_initial_state(self):
        job = PlannerJob(input_gb=32.0)
        state = SystemState.initial(job)
        assert state.source_remaining_gb == 32.0
        assert state.map_done_gb == 0.0

    def test_consistent_state_accepted(self):
        job = PlannerJob(input_gb=32.0)
        state = SystemState(
            source_remaining_gb=16.0,
            stored_input={"s3": 8.0},
            map_done_gb=8.0,
            stored_output={"s3": 8.0 * job.map_output_ratio},
        )
        state.validate_against(job)

    def test_excess_input_rejected(self):
        job = PlannerJob(input_gb=32.0)
        state = SystemState(source_remaining_gb=30.0, stored_input={"s3": 10.0})
        with pytest.raises(ValueError):
            state.validate_against(job)

    def test_unaccounted_output_rejected(self):
        job = PlannerJob(input_gb=32.0)
        state = SystemState(source_remaining_gb=16.0, map_done_gb=16.0)
        with pytest.raises(ValueError):
            state.validate_against(job)


class TestPlanningProblem:
    def make(self, **kwargs):
        defaults = dict(
            job=PlannerJob(input_gb=32.0),
            services=public_cloud(),
            network=NetworkConditions(),
            goal=Goal.min_cost(deadline_hours=6.0),
        )
        defaults.update(kwargs)
        return PlanningProblem(**defaults)

    def test_horizon_intervals(self):
        assert self.make().horizon_intervals == 6
        assert self.make(interval_hours=0.5).horizon_intervals == 12

    def test_unknown_fraction_service_rejected(self):
        with pytest.raises(ValueError):
            self.make(upload_fractions={"azure": 0.5})

    def test_fractions_over_one_rejected(self):
        with pytest.raises(ValueError):
            self.make(upload_fractions={"s3": 0.7, "ec2.m1.large": 0.7})

    def test_unknown_spot_estimate_rejected(self):
        with pytest.raises(ValueError):
            self.make(spot_price_estimates={"azure": [0.1]})

    def test_bad_lag_rejected(self):
        with pytest.raises(ValueError):
            self.make(upload_read_lag=2)

    def test_service_partition(self):
        problem = self.make()
        storage = {s.name for s in problem.storage_services()}
        compute = {s.name for s in problem.compute_services()}
        assert "s3" in storage and "s3" not in compute
        assert "ec2.m1.large" in storage and "ec2.m1.large" in compute
