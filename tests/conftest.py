"""Suite-wide fixtures: randomness isolation for order-independent tests.

``repro.sim.rng`` itself is stateless — every generator is hash-derived
from an explicit root seed (:func:`repro.sim.rng.derive_seed`), so
library randomness cannot leak between tests by construction.  What
*can* leak is the interpreter's global RNG state: any test (or library
under test — hypothesis, workload synthesizers) that touches
``random.random()`` or legacy ``numpy.random.*`` mutates process-global
state that the next test silently inherits, making outcomes depend on
execution order.

The autouse fixture below snapshots both global states before every test
and restores them after, so no test can observe another's draws and
``pytest -p no:randomly``-style reordering (or ``-x`` reruns of a single
test) can never change a result.
"""

import random

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _isolate_global_rng_state():
    """Snapshot/restore ``random`` and legacy ``np.random`` global state."""
    python_state = random.getstate()
    numpy_state = np.random.get_state()
    try:
        yield
    finally:
        random.setstate(python_state)
        np.random.set_state(numpy_state)
