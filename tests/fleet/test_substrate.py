"""Substrate event emission: spikes, evictions, failures, capacity."""

import numpy as np

from repro.cloud import SpotTrace
from repro.fleet import (
    CapacityChange,
    FailureInjector,
    FailureSpec,
    NodeFailure,
    PriceSpike,
    SpotEviction,
    Substrate,
)

SPOT = "ec2.m1.large.spot"


def trace_from(prices):
    return SpotTrace(np.asarray(prices, dtype=float), label="test")


class TestPriceEvents:
    def test_spike_and_crash_both_emit(self):
        # 0.16 -> 0.30 (+88%) at hour 2, 0.30 -> 0.16 (-47%) at hour 4.
        substrate = Substrate(
            {SPOT: trace_from([0.16, 0.16, 0.30, 0.30, 0.16, 0.16])}
        )
        events = substrate.advance(0.0, 6.0)
        spikes = [e for e in events if isinstance(e, PriceSpike)]
        assert [e.hour for e in spikes] == [2.0, 4.0]
        import pytest

        assert spikes[0].rel_change == pytest.approx(0.875)
        assert spikes[1].rel_change == pytest.approx(-0.467, abs=1e-3)

    def test_moves_below_threshold_stay_quiet(self):
        substrate = Substrate(
            {SPOT: trace_from([0.16, 0.18, 0.20, 0.22])}, spike_threshold=0.25
        )
        assert substrate.advance(0.0, 4.0) == []

    def test_eviction_fires_when_crossing_the_ceiling(self):
        prices = [0.16, 0.16, 0.16, 0.16, 0.40, 0.40, 0.16]
        substrate = Substrate(
            {SPOT: trace_from(prices)},
            eviction_bids={SPOT: 0.34},
            spike_threshold=10.0,  # isolate eviction events
        )
        events = substrate.advance(0.0, 7.0)
        evictions = [e for e in events if isinstance(e, SpotEviction)]
        # One event at the crossing, not one per expensive hour.
        assert [e.hour for e in evictions] == [4.0]
        assert evictions[0].bid_ceiling == 0.34

    def test_eviction_exactly_on_an_interval_boundary(self):
        """The satellite edge case: the price crosses the ceiling exactly
        at an interval boundary.  The event belongs to the interval that
        *starts* at the boundary (prices are hourly: ``price_at`` floors),
        and chunked advancing sees it exactly once."""
        prices = [0.16] * 4 + [0.50] + [0.16] * 3
        substrate = Substrate(
            {SPOT: trace_from(prices)},
            eviction_bids={SPOT: 0.34},
            spike_threshold=10.0,
        )
        # The hour-by-hour chunking a lockstep fleet performs:
        before = substrate.advance(3.0, 4.0)
        boundary = substrate.advance(4.0, 5.0)
        after = substrate.advance(5.0, 6.0)
        assert before == []
        assert [type(e) for e in boundary] == [SpotEviction]
        assert boundary[0].hour == 4.0
        assert after == []

    def test_chunked_advance_equals_one_sweep(self):
        # advance() is forward-stateful (capacity, eviction episodes):
        # one substrate advanced over contiguous windows — the lockstep
        # scheduler's call pattern — must see the same events as one
        # substrate sweeping the whole range at once.
        prices = [0.16, 0.30, 0.16, 0.40, 0.40, 0.35, 0.16]
        make = lambda: Substrate(
            {SPOT: trace_from(prices)}, eviction_bids={SPOT: 0.34}
        )
        sweep = make().advance(0.0, 7.0)
        stepper = make()
        chunked = [
            event
            for hour in range(7)
            for event in stepper.advance(float(hour), float(hour + 1))
        ]
        assert sweep == chunked

    def test_eviction_episode_in_progress_at_start_is_announced(self):
        """A fleet may start while the market already sits above the
        ceiling: the first narrated hour announces the ongoing episode
        (once), even though there is no upward crossing to observe."""
        substrate = Substrate(
            {SPOT: trace_from([0.50] * 48)},
            eviction_bids={SPOT: 0.34},
            spike_threshold=10.0,
        )
        first = substrate.advance(24.0, 25.0)
        assert [type(e) for e in first] == [SpotEviction]
        assert first[0].hour == 24.0
        # Still above the ceiling: the episode is not re-announced.
        assert substrate.advance(25.0, 30.0) == []


class TestFailures:
    def test_scheduled_failures_are_reported_once(self):
        injector = FailureInjector(
            schedule=[FailureSpec(hour=2.0, service=SPOT, severity=0.6)]
        )
        substrate = Substrate(
            {SPOT: trace_from([0.16] * 6)}, failures=injector
        )
        events = substrate.advance(0.0, 6.0)
        failures = [e for e in events if isinstance(e, NodeFailure)]
        assert len(failures) == 1
        assert failures[0].hour == 2.0
        assert failures[0].severity == 0.6

    def test_random_failures_are_deterministic_and_chunk_stable(self):
        def stream(chunk):
            injector = FailureInjector(rate_per_hour=0.2, seed=7)
            substrate = Substrate(
                {SPOT: trace_from([0.16] * 48)}, failures=injector
            )
            events = []
            hour = 0.0
            while hour < 48.0:
                events.extend(
                    e for e in substrate.advance(hour, hour + chunk)
                    if isinstance(e, NodeFailure)
                )
                hour += chunk
            return [(e.hour, e.service) for e in events]

        assert stream(1.0) == stream(4.0)
        assert len(stream(1.0)) > 0

    def test_rate_validation(self):
        import pytest

        with pytest.raises(ValueError):
            FailureInjector(rate_per_hour=1.5)
        with pytest.raises(ValueError):
            FailureInjector(severity=0.0)


class TestCapacity:
    def test_schedule_updates_capacity_and_reports_once(self):
        substrate = Substrate(
            {SPOT: trace_from([0.16] * 10)},
            capacity={SPOT: 32},
            capacity_schedule=[(3.0, SPOT, 8)],
        )
        assert substrate.capacity_of(SPOT) == 32
        events = substrate.advance(0.0, 5.0)
        changes = [e for e in events if isinstance(e, CapacityChange)]
        assert [(e.hour, e.nodes) for e in changes] == [(3.0, 8)]
        assert substrate.capacity_of(SPOT) == 8
        # Already applied: a later sweep does not re-announce it.
        assert substrate.advance(5.0, 10.0) == []
