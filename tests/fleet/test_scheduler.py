"""Fleet scheduler: lockstep stepping, budgets, coalescing, the wire."""

import numpy as np
import pytest

from repro.api import DeployEventV1, decode, encode
from repro.cloud import SpotTrace
from repro.cloud.traces import constant_trace
from repro.core import CurrentPricePredictor, Goal, NetworkConditions, PlannerJob
from repro.core.spot_sim import spot_services
from repro.fleet import (
    FailureInjector,
    FailureSpec,
    FleetConfig,
    FleetScheduler,
    Substrate,
)

SPOT = spot_services()[0].name
CEILING = spot_services()[0].price_per_node_hour
RATE = spot_services()[0].throughput_gb_per_hour


def build_fleet(trace=None, mode="event", n=2, deadline=8.0, failures=None,
                actual_rates=None, input_gb=2.0, **config_kwargs):
    trace = trace if trace is not None else constant_trace(0.16, days=3)
    substrate = Substrate(
        {SPOT: trace}, eviction_bids={SPOT: CEILING}, failures=failures
    )
    fleet = FleetScheduler(
        substrate,
        FleetConfig(mode=mode, interval_cadence_hours=6.0, **config_kwargs),
    )
    for i in range(n):
        fleet.add(
            f"tenant-{i + 1}",
            PlannerJob(name="kmeans", input_gb=input_gb),
            spot_services(),
            Goal.min_cost(deadline_hours=deadline),
            network=NetworkConditions.from_mbit_s(16.0),
            predictor=CurrentPricePredictor(),
            actual_rates=actual_rates,
        )
    return fleet


class TestFleetRun:
    def test_all_deployments_complete_on_one_substrate(self):
        result = build_fleet(n=3).run()
        assert result.completed == 3
        assert result.deadlines_met == 3
        assert result.total_cost > 0
        assert len(result.deployments) == 3
        assert result.mode == "event"

    def test_identical_deployments_coalesce_onto_one_solve(self):
        result = build_fleet(n=4).run()
        # Four identical initial plans: one cold solve, three cache hits.
        assert result.solves >= 1
        assert result.cache_hits >= result.solves
        assert result.solves + result.cache_hits >= 4

    def test_stream_is_valid_v1_wire_format(self):
        events = []
        # 12 GB over a tight deadline keeps compute running across
        # several intervals, so the 2x actual rate is observed and acted
        # on mid-flight.
        build_fleet(
            n=2, input_gb=12.0, deadline=5.0,
            actual_rates={SPOT: RATE * 2.0},
        ).run(on_event=events.append)
        assert events
        kinds = set()
        for event in events:
            assert isinstance(event, DeployEventV1)
            line = encode(event)
            assert decode(line) == event
            kinds.add(event.event)
        # The 2x actual rate forces deviation re-plans, so the stream
        # carries both interval and replan events.
        assert kinds == {"interval", "replan"}
        replans = [e for e in events if e.event == "replan"]
        for event in replans:
            assert event.trigger
            assert event.reason
            assert event.duration_hours == 0.0

    def test_describe_summarizes_the_fleet(self):
        result = build_fleet(n=2).run()
        text = result.describe()
        assert "2 deployments" in text
        assert "tenant-1" in text and "tenant-2" in text


class TestReplanBudget:
    def test_zero_budget_falls_back_to_interval_behavior(self):
        """The satellite edge case: an event-mode fleet with no budget
        must behave exactly like the fixed-interval baseline."""
        rates = {SPOT: RATE * 2.0}
        zero = build_fleet(
            mode="event", replan_budget=0, actual_rates=rates
        ).run()
        interval = build_fleet(
            mode="interval", actual_rates=rates
        ).run()
        assert zero.total_cost == pytest.approx(interval.total_cost)
        assert zero.total_replans == interval.total_replans
        assert [d.result.completion_hours for d in zero.deployments] == [
            d.result.completion_hours for d in interval.deployments
        ]
        assert all(d.event_replans == 0 for d in zero.deployments)

    def test_budget_bounds_event_driven_replans(self):
        result = build_fleet(
            mode="event", replan_budget=1, actual_rates={SPOT: RATE * 2.0}
        ).run()
        assert all(d.event_replans <= 1 for d in result.deployments)

    def test_interval_mode_spends_no_budget(self):
        result = build_fleet(
            mode="interval", actual_rates={SPOT: RATE * 2.0}
        ).run()
        assert all(d.event_replans == 0 for d in result.deployments)


class TestEventReactions:
    def test_eviction_on_boundary_triggers_immediate_replan(self):
        """A price spike above the on-demand ceiling lands exactly on an
        interval boundary; the event-mode fleet re-plans the affected
        deployments at that boundary (not at the next cadence mark)."""
        prices = np.full(72, 0.16)
        prices[3:5] = 10.0  # crosses the ceiling exactly at hour 3.0
        fleet = build_fleet(trace=SpotTrace(prices), mode="event", n=2,
                            input_gb=12.0, deadline=6.0)
        result = fleet.run()
        assert result.completed == 2
        assert any(e.kind == "eviction" and e.hour == 3.0
                   for e in result.events)
        for summary in result.deployments:
            kinds = {r.kind for r in summary.result.replan_records}
            assert "eviction" in kinds
            hours = [r.hour for r in summary.result.replan_records
                     if r.kind == "eviction"]
            # The reaction lands on the boundary itself, not at the next
            # cadence mark (6 h) — the whole point of event mode.
            assert min(hours) == pytest.approx(3.0)

    def test_node_failure_degrades_and_recovers(self):
        failures = FailureInjector(
            schedule=[FailureSpec(hour=1.0, service=SPOT, severity=0.5,
                                  duration_hours=1.0)]
        )
        # A tight deadline and an 8 GB input force compute both during
        # the failure window and after the restore, so both rates are
        # observable.
        result = build_fleet(
            mode="event", n=1, failures=failures, input_gb=8.0, deadline=5.0
        ).run()
        summary = result.deployments[0]
        assert summary.result.completed
        observed = [
            rate
            for outcome in summary.result.outcomes
            for rate in outcome.observed_rates.values()
        ]
        # Both the degraded and the recovered rate were actually seen.
        assert any(rate == pytest.approx(RATE * 0.5) for rate in observed)
        assert any(rate == pytest.approx(RATE) for rate in observed)
        kinds = {r.kind for r in summary.result.replan_records}
        assert "failure" in kinds


class TestValidation:
    def test_mismatched_interval_is_rejected(self):
        fleet = build_fleet(n=0)
        with pytest.raises(ValueError, match="does not match the"):
            fleet.add(
                "bad",
                PlannerJob(name="kmeans", input_gb=2.0),
                spot_services(),
                Goal.min_cost(deadline_hours=8.0),
                predictor=CurrentPricePredictor(),
                problem_kwargs={"interval_hours": 2.0},
            )

    def test_spot_service_requires_a_trace(self):
        substrate = Substrate({})
        fleet = FleetScheduler(substrate, FleetConfig())
        with pytest.raises(ValueError, match="has no trace"):
            fleet.add(
                "bad",
                PlannerJob(name="kmeans", input_gb=2.0),
                spot_services(),
                Goal.min_cost(deadline_hours=8.0),
                predictor=CurrentPricePredictor(),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(mode="psychic")
        with pytest.raises(ValueError):
            FleetConfig(replan_budget=-1)
        with pytest.raises(ValueError):
            FleetConfig(interval_cadence_hours=0.0)


class TestCapacity:
    def test_capacity_drop_caps_subsequent_plans(self):
        substrate = Substrate(
            {SPOT: constant_trace(0.16, days=3)},
            eviction_bids={SPOT: CEILING},
            capacity={SPOT: 64},
            capacity_schedule=[(2.0, SPOT, 2)],
        )
        fleet = FleetScheduler(
            substrate, FleetConfig(mode="event", interval_cadence_hours=6.0)
        )
        # 12 GB against a 5 h deadline needs well over 2 concurrent
        # nodes and is still mid-upload at hour 2 when the cap lands;
        # with the cap the job runs long (horizon extension) but every
        # subsequent plan respects the limit.
        fleet.add(
            "capped",
            PlannerJob(name="kmeans", input_gb=12.0),
            spot_services(),
            Goal.min_cost(deadline_hours=5.0),
            network=NetworkConditions.from_mbit_s(16.0),
            predictor=CurrentPricePredictor(),
        )
        result = fleet.run()
        summary = result.deployments[0]
        assert summary.result.completed
        assert summary.result.plans[0].peak_nodes(SPOT) > 2
        # Every plan adopted after the hour-2 capacity change respects
        # the 2-node limit (the initial plan did not).
        replanned = [
            summary.result.plans[r.plan_index]
            for r in summary.result.replan_records
            if r.hour >= 2.0
        ]
        assert replanned, "the capacity change should force a re-plan"
        for plan in replanned:
            assert plan.peak_nodes(SPOT) <= 2
        # And what actually ran stayed within the limit after the change.
        for outcome in summary.result.outcomes:
            if outcome.start_hour >= 3.0:
                assert outcome.nodes.get(SPOT, 0) <= 2


class TestWarmReplanPath:
    """The incremental hot path: peeked replans, prefetch batching, and
    the warm counters surfaced on FleetResult."""

    def controller(self, **kwargs):
        from repro.cloud import public_cloud
        from repro.core.controller import JobController

        return JobController(
            PlannerJob(name="kmeans", input_gb=8.0),
            public_cloud(),
            Goal.min_cost(deadline_hours=4.0),
            network=NetworkConditions.from_mbit_s(16.0),
            **kwargs,
        )

    def test_peek_is_none_without_a_pending_replan(self):
        run = self.controller().start()
        assert run.peek_replan_problem() is None
        run.close()

    def test_peek_matches_the_problem_the_replan_solves(self):
        solved = []
        run = self.controller().start()
        original_plan = run.controller.planner.plan
        run.controller.planner.plan = (
            lambda problem: (solved.append(problem), original_plan(problem))[1]
        )
        assert run.step() is not None
        assert run.request_replan("price moved", kind="price")
        peeked = run.peek_replan_problem()
        assert peeked is not None
        solved.clear()
        run.step()  # adopts the pending replan
        assert len(solved) == 1
        from repro.service import problem_fingerprint

        assert problem_fingerprint(solved[0]) == problem_fingerprint(peeked)
        run.close()

    def test_peek_is_none_once_done_or_capped(self):
        from repro.core.controller import ControllerConfig

        run = self.controller(config=ControllerConfig(max_replans=0)).start()
        run.step()
        assert not run.request_replan("capped")
        assert run.peek_replan_problem() is None
        run.close()

    def test_fleet_result_carries_warm_counters(self):
        result = build_fleet(n=2).run()
        assert result.warm_solves >= 0
        assert result.warm_fallbacks >= 0
        assert result.batched_replans >= 0
        from repro.fleet import fleet_summary

        summary = fleet_summary(result)
        for key in ("warm_solves", "warm_fallbacks", "batched_replans"):
            assert key in summary

    def test_same_step_replans_prefetch_as_one_batch(self):
        # One shared price event triggers a replan for every deployment
        # in the same scheduler step; distinct input sizes defeat the
        # exact plan cache, so the replans must reach the incremental
        # layer together as one block-diagonal batch.  The deadline-7
        # deployment's *initial* solve seeds the 7-hour-horizon
        # structure the others' hour-1 replans (8 - 1 remaining) land on.
        prices = np.full(3 * 24, 0.16)
        prices[1:] = 0.24  # a price jump once everyone is mid-flight
        trace = SpotTrace(prices, label="jump")
        substrate = Substrate({SPOT: trace}, eviction_bids={SPOT: CEILING})
        fleet = FleetScheduler(
            substrate, FleetConfig(mode="event", interval_cadence_hours=6.0)
        )
        fleet.add(
            "seeder",
            PlannerJob(name="kmeans", input_gb=10.0),
            spot_services(),
            Goal.min_cost(deadline_hours=7.0),
            network=NetworkConditions.from_mbit_s(16.0),
            predictor=CurrentPricePredictor(),
        )
        for i in range(3):
            fleet.add(
                f"tenant-{i + 1}",
                PlannerJob(name="kmeans", input_gb=10.0 + 0.2 * i),
                spot_services(),
                Goal.min_cost(deadline_hours=8.0),
                network=NetworkConditions.from_mbit_s(16.0),
                predictor=CurrentPricePredictor(),
            )
        assert fleet.replanner.incremental is not None
        result = fleet.run()
        assert result.completed == 4
        assert result.batched_replans >= 2, (
            result.solves, result.warm_solves, result.warm_fallbacks,
        )
        stats = fleet.replanner.incremental.stats
        assert stats.batches >= 1
        assert stats.batched_problems == result.batched_replans
