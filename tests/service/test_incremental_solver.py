"""IncrementalSolver: warm re-solves, fallback accounting, batching, and
the isolation of its retained matrices from the shared model caches."""

import pytest

from repro.core import Goal, NetworkConditions, PlannerJob, PlanningProblem
from repro.core.model_builder import PlanningError, build_model
from repro.core.planner import Planner
from repro.cloud import public_cloud
from repro.obs.registry import MetricsRegistry
from repro.service import IncrementalSolver, LRUCache, structural_fingerprint
from repro.service.incremental import _own_copy
from repro.service.pool import SolverPool


def make_problem(input_gb=4.0, deadline=3.0, uplink=16.0) -> PlanningProblem:
    return PlanningProblem(
        job=PlannerJob(name="job", input_gb=input_gb),
        services=public_cloud(),
        network=NetworkConditions.from_mbit_s(uplink),
        goal=Goal.min_cost(deadline_hours=deadline),
    )


def drift_series(n=4):
    """Same structure, small data drift — the replan hot path."""
    return [make_problem(uplink=16.0 + 0.1 * ((k % 3) - 1)) for k in range(n)]


class TestWarmEquality:
    def test_warm_resolves_match_cold_within_solver_tolerance(self):
        solver = IncrementalSolver()
        cold = Planner()
        solver.solve(make_problem())
        for problem in drift_series():
            warm_plan = solver.solve(problem)
            cold_plan = cold.plan(problem)
            assert warm_plan.solver_status == "optimal"
            assert warm_plan.objective_value == pytest.approx(
                cold_plan.objective_value, rel=0.01, abs=1e-6
            )
        assert solver.stats.warm >= 2

    def test_repeat_solve_of_identical_problem_is_warm_and_exact(self):
        solver = IncrementalSolver()
        first = solver.solve(make_problem())
        again = solver.solve(make_problem())
        assert solver.stats.warm == 1
        assert again.objective_value == pytest.approx(
            first.objective_value, rel=1e-6
        )

    def test_infeasible_problem_raises_planning_error(self):
        solver = IncrementalSolver()
        with pytest.raises(PlanningError):
            solver.solve(make_problem(input_gb=500.0, deadline=1.0, uplink=1.0))


class TestAccounting:
    def test_every_solve_lands_in_exactly_one_bucket(self):
        solver = IncrementalSolver()
        solver.solve(make_problem())  # cold
        solver.solve(make_problem())  # warm
        solver.solve(make_problem(deadline=4.0))  # new structure: cold
        stats = solver.stats
        assert stats.solves == 3
        assert stats.cold == 2 and stats.warm == 1
        assert stats.warm_rate == pytest.approx(1 / 3)

    def test_different_horizons_do_not_share_structure(self):
        assert structural_fingerprint(make_problem(deadline=3.0)) != (
            structural_fingerprint(make_problem(deadline=4.0))
        )
        assert structural_fingerprint(make_problem(uplink=12.0)) == (
            structural_fingerprint(make_problem(uplink=20.0))
        )

    def test_shape_change_under_a_retained_key_counts_structural(self):
        solver = IncrementalSolver()
        problem = make_problem()
        solver.solve(problem)
        # Corrupt the retained matrix's shape so the next diff under the
        # same key cannot classify the change as pure data.
        key = structural_fingerprint(problem)
        entry = solver._entries.get(key)
        entry.compiled.rows.append({0: 1.0})
        entry.compiled.row_lb.append(0.0)
        entry.compiled.row_ub.append(1.0)
        plan = solver.solve(make_problem())
        assert plan.solver_status == "optimal"
        assert solver.stats.structural_fallbacks == 1
        # The stale entry was retired and re-seeded: next solve is warm.
        solver.solve(make_problem())
        assert solver.stats.warm == 1

    def test_metrics_counters_flow_into_the_registry(self):
        registry = MetricsRegistry()
        solver = IncrementalSolver(metrics=registry)
        solver.solve(make_problem())
        solver.solve(make_problem())
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["incremental.cold"] == 1
        assert counters["incremental.warm"] == 1


class TestBatching:
    def test_solve_many_batches_same_structure_problems(self):
        solver = IncrementalSolver()
        solver.solve(make_problem())  # seed the structure
        results = solver.solve_many(drift_series(4))
        assert all(not isinstance(r, PlanningError) for r in results)
        assert solver.stats.batches == 1
        assert solver.stats.batched_problems == 4
        cold = Planner()
        for problem, result in zip(drift_series(4), results):
            assert result.objective_value == pytest.approx(
                cold.plan(problem).objective_value, rel=0.01, abs=1e-6
            )

    def test_unseeded_batch_seeds_itself_then_goes_warm(self):
        solver = IncrementalSolver()
        results = solver.solve_many(drift_series(3))
        assert all(not isinstance(r, PlanningError) for r in results)
        # The first member solved cold and seeded the structure; the
        # re-prepare pass lets its batch-mates restart warm off it.
        assert solver.stats.cold == 1
        assert solver.stats.warm >= 1

    def test_batch_returns_errors_in_place(self):
        solver = IncrementalSolver()
        bad = make_problem(input_gb=500.0, deadline=1.0, uplink=1.0)
        results = solver.solve_many([make_problem(), bad])
        assert not isinstance(results[0], PlanningError)
        assert isinstance(results[1], PlanningError)


class TestRetainedMatrixIsolation:
    def test_own_copy_shares_no_mutable_state(self):
        compiled = build_model(make_problem()).model.compile()
        copied = _own_copy(compiled)
        copied.objective[0] = 123.0
        copied.rows[0][0] = 456.0
        copied.row_lb[0] = -789.0
        copied.var_ub[0] = 0.5
        assert compiled.objective.get(0) != 123.0
        assert compiled.rows[0].get(0) != 456.0
        assert compiled.row_lb[0] != -789.0
        assert compiled.var_ub[0] != 0.5

    def test_entry_patching_never_reaches_the_models_compile_cache(self):
        solver = IncrementalSolver()
        problem = make_problem()
        solver.solve(problem)
        key = structural_fingerprint(problem)
        before = _own_copy(solver._entries.get(key).compiled)
        # A drifted re-solve patches the retained matrix in place ...
        solver.solve(make_problem(uplink=17.0))
        after = solver._entries.get(key).compiled
        assert after.rows == before.rows  # sparsity untouched
        # ... and a fresh compile of the original problem still carries
        # the original data, proving the retained copy was private.
        fresh = build_model(make_problem()).model.compile()
        assert fresh.row_lb == before.row_lb
        assert fresh.row_ub == before.row_ub


class TestPoolWarmPathConsistency:
    """Satellite regression: a cached BuiltModel mutated in place must be
    recompiled before the warm path re-solves it."""

    def test_mutated_cached_model_is_revalidated_on_warm_solve(self):
        cache = LRUCache(8)
        pool = SolverPool(mode="inline", model_cache=cache)
        problem = make_problem()
        plan1 = pool.submit(problem, fingerprint="fp").result(timeout=120.0)
        built = cache.get("fp")
        assert built is not None

        # Mutate the cached model the way deviation learning does: tighten
        # a node-count bound below what the first plan used, in place.
        compute, peak = max(
            ((s.name, plan1.peak_nodes(s.name))
             for s in problem.services if s.can_compute),
            key=lambda pair: pair[1],
        )
        assert peak >= 1
        capped = peak - 1
        for var in built.model.variables:
            if var.name.startswith(f"nodes[{compute},"):
                var.ub = float(capped)

        plan2 = pool.submit(problem, fingerprint="fp").result(timeout=120.0)
        # The warm path must honor the tightened bound (stale compiled
        # matrices used to leak the old capacity through).
        assert plan2.peak_nodes(compute) <= capped

    def test_incremental_pool_routes_through_the_solver(self):
        solver = IncrementalSolver()
        pool = SolverPool(mode="inline", incremental=solver)
        problem = make_problem()
        pool.submit(problem, fingerprint="fp").result(timeout=120.0)
        pool.submit(problem, fingerprint="fp").result(timeout=120.0)
        assert solver.stats.solves == 2
        assert solver.stats.warm == 1


class TestServiceIntegration:
    def test_incremental_service_reports_reuse_counters(self):
        from repro.service import PlanningService, ServiceConfig

        config = ServiceConfig(pool_mode="inline", max_workers=1, incremental=True)
        with PlanningService(config) as service:
            service.submit(make_problem()).result(timeout=120.0)
            service.submit(make_problem(uplink=16.2)).result(timeout=120.0)
            snapshot = service.metrics.registry.snapshot()
        counters = snapshot["counters"]
        # Distinct fingerprints miss the exact plan cache but share a
        # structure, so the second solve restarts warm — and both rates
        # are visible to `repro serve --metrics-json`.
        assert counters.get("incremental.cold", 0) == 1
        assert counters.get("incremental.warm", 0) == 1

    def test_stock_service_keeps_cold_semantics(self):
        from repro.service import PlanningService, ServiceConfig

        config = ServiceConfig(pool_mode="inline", max_workers=1)
        with PlanningService(config) as service:
            assert service.incremental is None
            result = service.submit(make_problem()).result(timeout=120.0)
            assert result.ok
            snapshot = service.metrics.registry.snapshot()
        assert "incremental.cold" not in snapshot["counters"]
