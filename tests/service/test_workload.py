"""Synthetic workload generator."""

import pytest

from repro.service import (
    DEFAULT_MIX,
    SCENARIOS,
    generate_workload,
    problem_for_scenario,
)


class TestScenarios:
    def test_every_scenario_builds_a_problem(self):
        for scenario in SCENARIOS:
            problem = problem_for_scenario(scenario, input_gb=8.0,
                                           deadline_hours=6.0)
            assert problem.job.input_gb > 0
            assert problem.goal.deadline_hours == 6.0
            assert any(s.can_compute for s in problem.services)

    def test_spot_scenario_carries_estimates(self):
        problem = problem_for_scenario("spot", deadline_hours=8.0, spot_price=0.21)
        spot_names = {s.name for s in problem.services if s.is_spot}
        assert spot_names
        assert set(problem.spot_price_estimates) == spot_names
        series = next(iter(problem.spot_price_estimates.values()))
        assert len(series) == 8 and series[0] == 0.21

    def test_hybrid_scenario_includes_local_provider(self):
        problem = problem_for_scenario("hybrid", local_nodes=3)
        local = [s for s in problem.services if s.provider == "local"]
        assert len(local) == 1 and local[0].max_nodes == 3

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            problem_for_scenario("teleport")


class TestGenerator:
    def test_deterministic_in_seed(self):
        a = generate_workload(tenants=4, requests=12, seed=7)
        b = generate_workload(tenants=4, requests=12, seed=7)
        assert len(a) == len(b) == 12
        for x, y in zip(a, b):
            assert x.tenant == y.tenant
            assert x.priority == y.priority
            assert x.problem.canonical() == y.problem.canonical()

    def test_different_seed_differs(self):
        a = generate_workload(tenants=4, requests=12, seed=0)
        b = generate_workload(tenants=4, requests=12, seed=1)
        assert any(
            x.problem.canonical() != y.problem.canonical() for x, y in zip(a, b)
        )

    def test_tenants_and_counts(self):
        requests = generate_workload(tenants=3, requests=30, seed=2)
        tenants = {r.tenant for r in requests}
        assert tenants <= {f"tenant-{i}" for i in range(3)}
        assert len(tenants) > 1

    def test_repeats_exist_for_cacheability(self):
        """The grids are small on purpose: a longer stream must contain
        duplicate problems, or the plan cache could never hit."""
        from repro.service import problem_fingerprint

        requests = generate_workload(tenants=8, requests=64, seed=0)
        fingerprints = [problem_fingerprint(r.problem) for r in requests]
        assert len(set(fingerprints)) < len(fingerprints)

    def test_workload_respects_feasibility_guard(self):
        for request in generate_workload(tenants=8, requests=40, seed=3):
            problem = request.problem
            upload_hours = (
                problem.job.input_gb / problem.network.uplink_gb_per_hour
            )
            assert upload_hours < problem.goal.deadline_hours

    def test_custom_mix_validated(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            generate_workload(requests=1, mix={"warp": 1.0})
        only_quickstart = generate_workload(
            requests=10, mix={"quickstart": 1.0}, seed=0
        )
        assert all(
            not any(s.is_spot for s in r.problem.services)
            for r in only_quickstart
        )

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_workload(tenants=0)
