"""Deployment sessions: controller loops with streamed progress."""

import pytest

from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, PlannerJob
from repro.core.conditions import ActualConditions
from repro.core.executor import IntervalOutcome
from repro.service import SessionManager


def start_small_session(manager, tenant="acme", input_gb=4.0):
    return manager.start(
        tenant,
        PlannerJob(name="kmeans", input_gb=input_gb),
        public_cloud(),
        Goal.min_cost(deadline_hours=3.0),
        network=NetworkConditions.from_mbit_s(16.0),
    )


class TestDeploySession:
    def test_streams_every_interval_outcome(self):
        manager = SessionManager()
        session = start_small_session(manager)
        streamed = list(session.events(timeout=300.0))
        result = session.wait(timeout=300.0)
        assert result.completed
        assert all(isinstance(o, IntervalOutcome) for o in streamed)
        # The stream is exactly the controller's outcome record, in order.
        assert [o.index for o in streamed] == [o.index for o in result.outcomes]
        assert len(streamed) >= 1

    def test_wait_returns_controller_result(self):
        manager = SessionManager()
        session = start_small_session(manager)
        result = session.wait(timeout=300.0)
        assert result.completed and result.deadline_met
        assert result.total_cost > 0
        assert not session.running

    def test_deviation_still_completes(self):
        """A mispredicted throughput triggers re-planning mid-session."""
        manager = SessionManager()
        session = manager.start(
            "acme",
            PlannerJob(name="kmeans", input_gb=4.0),
            public_cloud(),
            Goal.min_cost(deadline_hours=4.0),
            network=NetworkConditions.from_mbit_s(16.0),
            actual=ActualConditions(
                throughput_gb_per_hour={"ec2.m1.large": 0.22,
                                        "ec2.m1.xlarge": 0.42}
            ),
        )
        outcomes = list(session.events(timeout=600.0))
        result = session.wait(timeout=600.0)
        assert result.completed
        assert len(outcomes) == len(result.outcomes)


class TestReplanStreaming:
    def test_replans_are_streamed_on_request(self):
        from repro.core.controller import ReplanRecord

        manager = SessionManager()
        session = manager.start(
            "acme",
            PlannerJob(name="kmeans", input_gb=4.0),
            public_cloud(),
            Goal.min_cost(deadline_hours=4.0),
            network=NetworkConditions.from_mbit_s(16.0),
            actual=ActualConditions(
                throughput_gb_per_hour={"ec2.m1.large": 0.22,
                                        "ec2.m1.xlarge": 0.42}
            ),
        )
        streamed = list(session.events(timeout=600.0, include_replans=True))
        result = session.wait(timeout=600.0)
        replans = [e for e in streamed if isinstance(e, ReplanRecord)]
        intervals = [e for e in streamed if isinstance(e, IntervalOutcome)]
        assert result.replans >= 1
        assert len(replans) == result.replans
        assert len(intervals) == len(result.outcomes)
        # Default stream stays intervals-only (backwards compatible).
        assert replans and all(r.kind for r in replans)


class TestSessionManager:
    def test_tracks_sessions_per_tenant(self):
        manager = SessionManager()
        a = start_small_session(manager, tenant="a")
        b = start_small_session(manager, tenant="b", input_gb=5.0)
        manager.join_all(timeout=600.0)
        assert {s.session_id for s in manager.sessions()} == {
            a.session_id,
            b.session_id,
        }
        assert manager.sessions(tenant="a") == [a]
        assert manager.get(b.session_id) is b

    def test_ids_are_unique_and_increasing(self):
        manager = SessionManager()
        first = start_small_session(manager)
        second = start_small_session(manager)
        assert second.session_id > first.session_id
        assert manager.join_all(timeout=600.0) == []

    def test_join_all_returns_stragglers_instead_of_hanging(self):
        """The satellite edge case: a session's thread outlives the
        timeout; ``join_all`` must come back (with the straggler) rather
        than hang or raise.

        Synchronized on events rather than wall-clock sleeps: the fake
        controller signals ``started`` once its thread is actually
        running (so the short ``join_all`` below is guaranteed to meet a
        live straggler, however slowly the thread spawned), and blocks
        on ``release`` until the test lets it finish — no elapsed-time
        assertions that a loaded CI box could flake.
        """
        import threading

        from repro.service.session import DeploySession

        started = threading.Event()
        release = threading.Event()

        class SlowController:
            def run(self, actual=None, on_interval=None, on_replan=None):
                started.set()
                assert release.wait(timeout=60.0), (
                    "test never released the session"
                )

        manager = SessionManager()
        session = DeploySession(99, "slow", SlowController())
        manager._sessions[99] = session
        session._start()
        assert started.wait(timeout=30.0), "session thread never started"
        stragglers = manager.join_all(timeout=0.05)
        assert stragglers == [session]
        assert session.running
        release.set()
        assert manager.join_all(timeout=60.0) == []
        assert not session.running
