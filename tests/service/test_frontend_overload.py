"""Overload behavior of the sharded frontend: bounded queues shed with
``rejected`` (never hang), queued requests expire on deadline, deadline
shedding trips at admission, and disconnect-cancelled work never solves."""

import time

import pytest
from test_frontend_cache import (
    ManualPool,
    make_problem,
    tenant_on_shard,
    wait_until,
)

from repro.core import Planner
from repro.service import (
    AdmissionError,
    PlanningService,
    RequestStatus,
    ServiceConfig,
)
from repro.service.frontend import ShardedPlanningService


class TestAdmissionShedding:
    def test_saturated_shard_sheds_instead_of_hanging(self):
        # Shard 0: one solve gated in the pool, one dispatch blocked on
        # the single worker slot, two requests filling the queue — the
        # next submit is refused immediately (AdmissionError -> wire
        # status "rejected"), while the sibling shard stays open and
        # everything admitted still completes once the solve lands.
        service = ShardedPlanningService(
            ServiceConfig(
                pool_mode="inline",
                max_workers=1,
                ordered_admission=True,
                max_pending_total=2,
                max_pending_per_tenant=2,
            ),
            shards=2,
        )
        pool = ManualPool()
        service.shards[0].pool = pool
        broker = service.shards[0].broker
        tenant = tenant_on_shard(0, 2)
        other = tenant_on_shard(1, 2)
        gated_problem = make_problem(input_gb=2.0)
        queued_problem = make_problem(input_gb=8.0)
        with service:
            gated = service.submit(gated_problem, tenant=tenant)
            assert wait_until(lambda: len(pool.submissions) == 1)
            head = service.submit(queued_problem, tenant=tenant)
            # The dispatcher pops it and blocks waiting for the slot.
            assert wait_until(lambda: broker.pending == 0)
            queued = [
                service.submit(queued_problem, tenant=tenant)
                for _ in range(2)
            ]
            assert broker.pending == 2
            started = time.perf_counter()
            with pytest.raises(AdmissionError):
                service.submit(queued_problem, tenant=tenant)
            # Shedding is immediate, not a timeout.
            assert time.perf_counter() - started < 1.0
            # The sibling shard is unaffected by this shard's backlog.
            assert service.submit(
                make_problem(input_gb=4.0), tenant=other
            ).result(timeout=120.0).ok

            pool.submissions[0][1].set_result(Planner().plan(gated_problem))
            assert gated.result(timeout=10.0).ok
            assert wait_until(lambda: len(pool.submissions) == 2)
            pool.submissions[1][1].set_result(Planner().plan(queued_problem))
            assert head.result(timeout=10.0).ok
            for ticket in queued:
                result = ticket.result(timeout=10.0)
                assert result.ok and result.cached
        assert service.metrics.rejected == 1

    def test_deadline_shedding_rejects_unmeetable_deadlines(self):
        service = PlanningService(ServiceConfig(
            pool_mode="inline", max_workers=1, deadline_shedding=True
        ))
        pool = ManualPool()
        service.pool = pool
        problems = [make_problem(input_gb=gb) for gb in (2.0, 4.0, 8.0)]
        try:
            gated = service.submit(problems[0], tenant="acme")
            assert wait_until(lambda: len(pool.submissions) == 1)
            service.submit(problems[1], tenant="acme")
            assert wait_until(lambda: service.broker.pending == 0)
            service.submit(problems[2], tenant="acme")
            assert service.broker.pending == 1
            # With a backlog and a queue-wait estimate far above the
            # deadline, admission sheds instead of queueing-to-expire...
            service._queue_wait_ewma = 10.0
            with pytest.raises(AdmissionError):
                service.submit(problems[2], tenant="acme", deadline_s=0.1)
            assert service.metrics.rejected == 1
            # ...but a request with no deadline still queues fine.
            service.submit(problems[2], tenant="acme")
            assert service.metrics.rejected == 1
            pool.submissions[0][1].set_result(Planner().plan(problems[0]))
            assert gated.result(timeout=10.0).ok
        finally:
            service.stop()

    def test_cold_service_never_deadline_sheds(self):
        config = ServiceConfig(
            pool_mode="inline", max_workers=1, deadline_shedding=True
        )
        with PlanningService(config) as service:
            result = service.submit(
                make_problem(), tenant="acme", deadline_s=120.0
            ).result(timeout=120.0)
        assert result.ok


class TestQueuedExpiry:
    def test_deadline_expired_queued_request_returns_expired(self):
        # Shard 0's dispatcher is pinned: one solve gated in the pool,
        # the next dispatch blocked on the worker slot.  A third request
        # with a tiny deadline therefore provably sits in the broker
        # queue while its SLO lapses — it must come back EXPIRED, never
        # solved uselessly late.
        config = ServiceConfig(
            pool_mode="inline", max_workers=1, ordered_admission=True
        )
        service = ShardedPlanningService(config, shards=2)
        pool = ManualPool()
        service.shards[0].pool = pool
        broker = service.shards[0].broker
        tenant = tenant_on_shard(0, 2)
        problems = [make_problem(input_gb=gb) for gb in (2.0, 4.0, 8.0)]
        with service:
            gated = service.submit(problems[0], tenant=tenant)
            assert wait_until(lambda: len(pool.submissions) == 1)
            blocked = service.submit(problems[1], tenant=tenant)
            assert wait_until(lambda: broker.pending == 0)
            doomed = service.submit(
                problems[2], tenant=tenant, deadline_s=1e-3
            )
            assert broker.pending == 1
            time.sleep(0.05)  # the queued deadline lapses
            pool.submissions[0][1].set_result(Planner().plan(problems[0]))
            assert gated.result(timeout=10.0).ok
            assert wait_until(lambda: len(pool.submissions) == 2)
            pool.submissions[1][1].set_result(Planner().plan(problems[1]))
            assert blocked.result(timeout=10.0).ok
            result = doomed.result(timeout=10.0)
        assert result.status is RequestStatus.EXPIRED
        assert result.error_code == "expired"
        assert "in queue" in result.error
        assert service.metrics.expired == 1


class TestDisconnectCancellation:
    def test_cancel_before_dispatch_skips_the_solver(self):
        config = ServiceConfig(
            pool_mode="inline", max_workers=1, ordered_admission=True
        )
        with PlanningService(config) as service:
            head = service.submit(make_problem(input_gb=2.0), tenant="acme")
            doomed = service.submit(make_problem(input_gb=8.0), tenant="acme")
            doomed.cancel()
            assert head.result(timeout=120.0).ok
            result = doomed.result(timeout=120.0)
        assert result.status is RequestStatus.REJECTED
        assert result.error_code == "rejected"
        assert service.metrics.cancelled == 1
        # The cancelled fingerprint never reached the solver: only the
        # head request was a cache miss.
        assert service.metrics.cache_misses == 1

    def test_cancel_after_completion_is_a_noop(self):
        config = ServiceConfig(pool_mode="inline", max_workers=1)
        with PlanningService(config) as service:
            ticket = service.submit(make_problem(), tenant="acme")
            result = ticket.result(timeout=120.0)
            ticket.cancel()
        assert result.ok
        assert service.metrics.cancelled == 0
