"""LRU plan-cache behavior."""

from repro.service import LRUCache


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=7) == 7

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now least-recent
        cache.put("c", 3)       # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_stats_and_hit_rate(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.hit_rate == 2 / 3

    def test_zero_capacity_disables_cache(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_contains_and_clear(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert "a" in cache
        cache.clear()
        assert "a" not in cache
