"""The asyncio socket frontend: wire compatibility with the stream
dialect, structured errors for bad lines, and disconnect cancellation."""

import asyncio
import time

from test_frontend_cache import make_problem, wait_until  # noqa: F401

from repro.api import (
    ErrorV1,
    HelloV1,
    PlanRequestV1,
    PlanResponseV1,
    decode,
    encode,
)
from repro.api.adapters import from_workload
from repro.service import ServiceConfig
from repro.service.frontend import (
    FrontendConfig,
    FrontendServer,
    ShardedPlanningService,
    generate_wire_workload,
    run_loadgen,
)


def frontend_service(**overrides) -> ShardedPlanningService:
    config = dict(
        pool_mode="inline",
        max_workers=1,
        ordered_admission=True,
        deadline_shedding=True,
    )
    config.update(overrides)
    return ShardedPlanningService(ServiceConfig(**config), shards=2)


def wire_request(request_id: str, *, input_gb=8.0, tenant="acme") -> bytes:
    request = PlanRequestV1(
        job=from_workload("quickstart", input_gb=input_gb),
        tenant=tenant,
        request_id=request_id,
    )
    return encode(request).encode("utf-8") + b"\n"


async def connect(server: FrontendServer):
    host, port = server.address
    return await asyncio.open_connection(host, port)


async def read_message(reader: asyncio.StreamReader, timeout=60.0):
    raw = await asyncio.wait_for(reader.readline(), timeout)
    assert raw, "connection closed unexpectedly"
    return decode(raw.decode("utf-8"))


class TestWireCompatibility:
    def test_hello_then_request_response_round_trip(self):
        service = frontend_service()
        server = FrontendServer(service, FrontendConfig(port=0))

        async def scenario():
            await server.start()
            try:
                reader, writer = await connect(server)
                hello = await read_message(reader)
                assert isinstance(hello, HelloV1)
                assert hello.schema_version == 1
                writer.write(wire_request("rq-1"))
                await writer.drain()
                response = await read_message(reader)
                writer.close()
                await writer.wait_closed()
                return response
            finally:
                await server.close()

        try:
            response = asyncio.run(scenario())
        finally:
            service.stop()
        # The response is the exact versioned wire schema the stream
        # path emits: same kind, statuses and field vocabulary.
        assert isinstance(response, PlanResponseV1)
        assert response.status == "completed"
        assert response.request_id == "rq-1"
        assert response.tenant == "acme"
        assert response.predicted_cost is not None
        assert response.error is None

    def test_bad_line_yields_bad_schema_and_connection_survives(self):
        service = frontend_service()
        server = FrontendServer(service, FrontendConfig(port=0))

        async def scenario():
            await server.start()
            try:
                reader, writer = await connect(server)
                await read_message(reader)  # hello
                writer.write(b'{"schema_version": 99, "kind": "nope"}\n')
                writer.write(b"not json at all\n")
                writer.write(wire_request("rq-after-errors"))
                await writer.drain()
                first = await read_message(reader)
                second = await read_message(reader)
                third = await read_message(reader)
                writer.close()
                await writer.wait_closed()
                return first, second, third
            finally:
                await server.close()

        try:
            first, second, third = asyncio.run(scenario())
        finally:
            service.stop()
        assert isinstance(first, ErrorV1) and first.code == "bad_schema"
        assert isinstance(second, ErrorV1) and second.code == "bad_schema"
        # Bad lines do not poison the connection: the valid request
        # after them is answered normally.
        assert isinstance(third, PlanResponseV1)
        assert third.status == "completed"
        assert third.request_id == "rq-after-errors"
        assert server.registry.counter("frontend.bad_lines").value == 2

    def test_admission_refusal_comes_back_as_rejected_response(self):
        service = frontend_service(
            max_pending_total=1, max_pending_per_tenant=1
        )
        server = FrontendServer(service, FrontendConfig(port=0))

        async def scenario():
            await server.start()
            try:
                reader, writer = await connect(server)
                await read_message(reader)
                # Burst well past the per-tenant bound; at least one
                # must shed, every line must be answered.
                for index in range(6):
                    writer.write(
                        wire_request(f"rq-{index}", input_gb=4.0 + index)
                    )
                await writer.drain()
                responses = [await read_message(reader) for _ in range(6)]
                writer.close()
                await writer.wait_closed()
                return responses
            finally:
                await server.close()

        try:
            responses = asyncio.run(scenario())
        finally:
            service.stop()
        statuses = sorted(response.status for response in responses)
        assert len(responses) == 6
        assert "rejected" in statuses
        rejected = [r for r in responses if r.status == "rejected"]
        assert all(r.error is not None and r.error.code == "rejected"
                   for r in rejected)


class TestDisconnect:
    def test_disconnect_cancels_queued_work(self):
        service = frontend_service()
        server = FrontendServer(service, FrontendConfig(port=0))

        async def scenario():
            await server.start()
            try:
                reader, writer = await connect(server)
                await read_message(reader)
                # A cold solve to occupy the shard, then queued work the
                # client will never wait for.
                writer.write(wire_request("rq-cold", input_gb=8.0))
                writer.write(wire_request("rq-queued-1", input_gb=16.0))
                writer.write(wire_request("rq-queued-2", input_gb=32.0))
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                # Give the server loop a moment to tear the session down.
                deadline = time.perf_counter() + 10.0
                while time.perf_counter() < deadline:
                    if server.registry.counter(
                        "frontend.cancelled_on_disconnect"
                    ).value:
                        break
                    await asyncio.sleep(0.02)
            finally:
                await server.close()

        try:
            asyncio.run(scenario())
            cancelled_on_disconnect = server.registry.counter(
                "frontend.cancelled_on_disconnect"
            ).value
            # The cancel flag is honored at dispatch on service threads.
            assert wait_until(lambda: service.metrics.cancelled >= 1)
        finally:
            service.stop()
        assert cancelled_on_disconnect >= 1
        metrics = service.metrics
        assert metrics.cancelled >= 1
        # Cancelled fingerprints never solved: at most the cold request
        # reached the pool.
        assert metrics.cache_misses <= 1


class TestLoadgenAgainstServer:
    def test_every_request_answered_under_concurrency(self):
        service = frontend_service()
        server = FrontendServer(service, FrontendConfig(port=0))

        async def scenario():
            await server.start()
            host, port = server.address
            try:
                workload = generate_wire_workload(
                    60, 2, seed=7, distinct=3
                )
                return await run_loadgen(
                    [f"{host}:{port}"],
                    workload,
                    connect_concurrency=32,
                    response_timeout_s=120.0,
                )
            finally:
                await server.close()

        try:
            report = asyncio.run(scenario())
        finally:
            service.stop()
        assert report.sent == 120
        assert report.connect_failures == 0
        assert report.lost == 0
        # Accountability: every request completed or came back as a
        # structured shed/error response.
        assert report.answered == report.sent
        assert report.completed >= report.sent * 0.5
        merged = service.metrics
        # Both shards took traffic (the hash spreads 60 tenants).
        per_shard = [shard.metrics.completed for shard in service.shards]
        assert all(count > 0 for count in per_shard)
        assert merged.completed == sum(per_shard)
