"""Cross-shard caching: shard routing, the shared L2, single-flight
coalescing across shards, and per-tenant FIFO under ordered admission."""

import concurrent.futures
import time

import pytest

from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, Planner, PlannerJob, PlanningProblem
from repro.service import (
    PlanningService,
    PlanRequest,
    RequestStatus,
    ServiceConfig,
    SharedPlanCache,
    problem_fingerprint,
)
from repro.service.frontend import ShardedPlanningService, shard_for_tenant


def make_problem(input_gb=4.0, deadline=3.0, uplink=16.0) -> PlanningProblem:
    return PlanningProblem(
        job=PlannerJob(name="job", input_gb=input_gb),
        services=public_cloud(),
        network=NetworkConditions.from_mbit_s(uplink),
        goal=Goal.min_cost(deadline_hours=deadline),
    )


def sharded(shards=2, **overrides) -> ShardedPlanningService:
    config = dict(pool_mode="inline", max_workers=1, ordered_admission=True)
    config.update(overrides)
    return ShardedPlanningService(ServiceConfig(**config), shards=shards)


def tenant_on_shard(shard: int, shards: int) -> str:
    """A tenant name hashing to ``shard`` (the hash is stable, so the
    search is deterministic)."""
    for index in range(10_000):
        tenant = f"tenant-{index}"
        if shard_for_tenant(tenant, shards) == shard:
            return tenant
    raise AssertionError("no tenant found for shard")


class ManualPool:
    """A solver pool whose futures the test completes by hand."""

    max_workers = 1

    def __init__(self):
        self.submissions = []

    def submit(self, problem, fingerprint, budget):
        future = concurrent.futures.Future()
        self.submissions.append((fingerprint, future))
        return future

    def shutdown(self, wait=True):
        for _, future in self.submissions:
            if not future.done():
                future.set_exception(RuntimeError("pool shut down"))


def joined_count(cache: SharedPlanCache) -> int:
    """How many callbacks have joined the cache's open flights."""
    return sum(
        len(callbacks)
        for flights in cache._flights
        for callbacks in flights.values()
    )


def wait_until(predicate, timeout=5.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestShardRouting:
    def test_stable_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for index in range(50):
                tenant = f"tenant-{index}"
                first = shard_for_tenant(tenant, shards)
                assert first == shard_for_tenant(tenant, shards)
                assert 0 <= first < shards

    def test_spreads_tenants(self):
        hits = {shard_for_tenant(f"tenant-{i}", 4) for i in range(64)}
        assert hits == {0, 1, 2, 3}

    def test_requests_land_on_the_tenants_shard(self):
        service = sharded(shards=4)
        with service:
            tenant = tenant_on_shard(2, 4)
            result = service.submit(
                make_problem(), tenant=tenant
            ).result(timeout=120.0)
        assert result.ok
        assert service.shards[2].metrics.completed == 1
        for index in (0, 1, 3):
            assert service.shards[index].metrics.completed == 0


class TestSharedL2:
    def test_l2_hit_promotes_into_l1(self):
        problem = make_problem()
        fingerprint = problem_fingerprint(problem)
        plan = Planner().plan(problem)
        l2 = SharedPlanCache()
        l2.put(fingerprint, plan)
        service = PlanningService(
            ServiceConfig(pool_mode="inline", max_workers=1), shared_cache=l2
        )
        assert fingerprint not in service.plan_cache
        assert service._cached_plan(fingerprint) is plan
        assert fingerprint in service.plan_cache
        assert service.metrics.registry.counter("cache_l2_hits").value == 1

    def test_plan_solved_on_one_shard_hits_on_another(self):
        problem = make_problem()
        service = sharded(shards=2)
        with service:
            first = service.submit(
                problem, tenant=tenant_on_shard(0, 2)
            ).result(timeout=120.0)
            second = service.submit(
                problem, tenant=tenant_on_shard(1, 2)
            ).result(timeout=120.0)
        assert first.ok and not first.cached
        assert second.ok and second.cached
        assert second.solve_s == 0.0
        # One solve total across the fleet of shards.
        metrics = service.metrics
        assert metrics.cache_misses == 1
        assert metrics.cache_hits == 1

    def test_concurrent_identical_requests_on_two_shards_solve_once(self):
        problem = make_problem()
        fingerprint = problem_fingerprint(problem)
        plan = Planner().plan(problem)
        assert plan.solver_status == "optimal"

        service = sharded(shards=2)
        pools = [ManualPool(), ManualPool()]
        for shard, pool in zip(service.shards, pools):
            shard.pool = pool
        with service:
            leader_ticket = service.submit(
                problem, tenant=tenant_on_shard(0, 2)
            )
            assert wait_until(lambda: len(pools[0].submissions) == 1)
            # Shard 1 sees the same fingerprint while shard 0's solve is
            # in flight: it must join that flight, not start its own.
            follower_ticket = service.submit(
                problem, tenant=tenant_on_shard(1, 2)
            )
            assert wait_until(
                lambda: joined_count(service.shared_cache) == 1
            )
            assert service.shared_cache.inflight() == 1
            assert pools[1].submissions == []
            assert not follower_ticket.done()

            pools[0].submissions[0][1].set_result(plan)
            leader = leader_ticket.result(timeout=10.0)
            follower = follower_ticket.result(timeout=10.0)

        assert leader.ok and not leader.cached
        assert follower.ok and follower.cached
        assert follower.status is RequestStatus.COMPLETED
        # The flight settled: the plan is in the L2 and promoted into
        # the follower shard's L1.
        assert service.shared_cache.get(fingerprint) is plan
        assert fingerprint in service.shards[1].plan_cache
        assert service.shared_cache.inflight() == 0
        assert service.metrics.coalesced == 1

    def test_failed_leader_fails_joined_shards_with_same_code(self):
        problem = make_problem()
        service = sharded(shards=2)
        pools = [ManualPool(), ManualPool()]
        for shard, pool in zip(service.shards, pools):
            shard.pool = pool
        with service:
            leader_ticket = service.submit(
                problem, tenant=tenant_on_shard(0, 2)
            )
            assert wait_until(lambda: len(pools[0].submissions) == 1)
            follower_ticket = service.submit(
                problem, tenant=tenant_on_shard(1, 2)
            )
            assert wait_until(
                lambda: joined_count(service.shared_cache) == 1
            )

            from repro.lp.model import SolverError

            pools[0].submissions[0][1].set_exception(SolverError("backend died"))
            leader = leader_ticket.result(timeout=10.0)
            follower = follower_ticket.result(timeout=10.0)

        assert leader.status is RequestStatus.FAILED
        assert follower.status is RequestStatus.FAILED
        assert leader.error_code == follower.error_code == "solver_error"
        assert pools[1].submissions == []


class TestOrderedAdmissionFifo:
    def test_l2_hit_waits_its_queue_turn(self):
        # Under ordered admission a cache hit is NOT answered at submit
        # time — it queues like any miss, so a tenant's hit can never
        # overtake its own earlier queued request.
        problem = make_problem()
        fingerprint = problem_fingerprint(problem)
        plan = Planner().plan(problem)
        service = PlanningService(
            ServiceConfig(
                pool_mode="inline", max_workers=1, ordered_admission=True
            ),
            shared_cache=SharedPlanCache(),
        )
        service.shared_cache.put(fingerprint, plan)
        ticket = service.submit_request(
            PlanRequest(tenant="acme", problem=problem)
        )
        # Not synchronous: the dispatcher serves it in FIFO order.
        result = ticket.result(timeout=10.0)
        assert result.ok and result.cached
        service.stop()

    def test_same_tenant_hits_complete_in_submission_order(self):
        problems = [make_problem(input_gb=4.0), make_problem(input_gb=8.0)]
        plans = {problem_fingerprint(p): Planner().plan(p) for p in problems}
        l2 = SharedPlanCache()
        for fingerprint, plan in plans.items():
            l2.put(fingerprint, plan)
        service = PlanningService(
            ServiceConfig(
                pool_mode="inline", max_workers=1, ordered_admission=True
            ),
            shared_cache=l2,
        )
        completions = []
        with service:
            tickets = [
                service.submit(problem, tenant="acme") for problem in problems
            ]
            for index, ticket in enumerate(tickets):
                ticket.add_done_callback(
                    lambda done, index=index: completions.append(index)
                )
            for ticket in tickets:
                assert ticket.result(timeout=10.0).ok
        assert completions == [0, 1]
        assert service.metrics.cache_hits == 2


class TestSharedPlanCacheUnit:
    def test_begin_leader_then_hit_after_finish(self):
        cache = SharedPlanCache(capacity=16, stripes=4)
        verdict, plan = cache.begin("fp", lambda *a: None)
        assert (verdict, plan) == ("leader", None)
        cache.finish("fp", plan="the-plan")
        verdict, plan = cache.begin("fp", lambda *a: None)
        assert (verdict, plan) == ("hit", "the-plan")

    def test_joined_callback_fires_with_outcome(self):
        cache = SharedPlanCache()
        seen = []
        assert cache.begin("fp", lambda *a: None)[0] == "leader"
        assert cache.begin(
            "fp",
            lambda plan, error, budgeted: seen.append((plan, error, budgeted)),
        )[0] == "joined"
        cache.finish("fp", plan="p", budgeted=False)
        assert seen == [("p", None, False)]
        assert cache.inflight() == 0

    def test_finish_publishes_before_dropping_the_flight(self):
        # A begin racing finish must see the plan or the flight — the
        # public contract is simply: after finish, begin returns a hit.
        cache = SharedPlanCache()
        assert cache.begin("fp", lambda *a: None)[0] == "leader"
        cache.finish("fp", plan="p")
        assert cache.get("fp") == "p"

    def test_zero_capacity_still_single_flights(self):
        cache = SharedPlanCache(capacity=0)
        assert cache.begin("fp", lambda *a: None)[0] == "leader"
        fired = []
        assert cache.begin(
            "fp", lambda plan, error, budgeted: fired.append(plan)
        )[0] == "joined"
        cache.finish("fp", plan="p")
        assert fired == ["p"]
        # Nothing retained...
        assert cache.get("fp") is None
        # ...so the next identical request leads a fresh flight.
        assert cache.begin("fp", lambda *a: None)[0] == "leader"
