"""End-to-end planning-service behavior: correctness, caching, coalescing,
failure handling, and parallel submits."""

import threading

import pytest

from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, Planner, PlannerJob, PlanningProblem
from repro.service import (
    PlanningService,
    RequestStatus,
    ServiceConfig,
    problem_fingerprint,
)


def make_problem(input_gb=4.0, deadline=3.0, uplink=16.0) -> PlanningProblem:
    return PlanningProblem(
        job=PlannerJob(name="job", input_gb=input_gb),
        services=public_cloud(),
        network=NetworkConditions.from_mbit_s(uplink),
        goal=Goal.min_cost(deadline_hours=deadline),
    )


def inline_service(**overrides) -> PlanningService:
    config = dict(pool_mode="inline", max_workers=1)
    config.update(overrides)
    return PlanningService(ServiceConfig(**config))


class TestSolvePath:
    def test_submit_returns_the_planners_plan(self):
        problem = make_problem()
        direct = Planner().plan(problem)
        with inline_service() as service:
            result = service.submit(problem).result(timeout=120.0)
        assert result.ok and not result.cached
        assert result.status is RequestStatus.COMPLETED
        assert result.plan.predicted_cost == pytest.approx(
            direct.predicted_cost, rel=1e-6
        )
        assert result.fingerprint == problem_fingerprint(problem)

    def test_repeat_submit_hits_cache(self):
        problem = make_problem()
        with inline_service() as service:
            first = service.submit(problem).result(timeout=120.0)
            second = service.submit(problem).result(timeout=120.0)
        assert not first.cached
        assert second.cached and second.ok
        assert second.solve_s == 0.0
        assert second.plan.predicted_cost == pytest.approx(
            first.plan.predicted_cost
        )
        assert service.metrics.cache_hit_rate == pytest.approx(0.5)

    def test_equivalent_problem_hits_cache(self):
        # Different job name, same planning problem -> same fingerprint.
        renamed = PlanningProblem(
            job=PlannerJob(name="other-name", input_gb=4.0),
            services=list(reversed(public_cloud())),
            network=NetworkConditions.from_mbit_s(16.0),
            goal=Goal.min_cost(deadline_hours=3.0),
        )
        with inline_service() as service:
            service.submit(make_problem()).result(timeout=120.0)
            result = service.submit(renamed).result(timeout=120.0)
        assert result.cached

    def test_infeasible_problem_fails_cleanly(self):
        impossible = make_problem(input_gb=64.0, deadline=2.0)
        with inline_service() as service:
            result = service.submit(impossible).result(timeout=120.0)
        assert result.status is RequestStatus.FAILED
        assert not result.ok
        assert "infeasible" in result.error.lower() or "failed" in result.error.lower()
        assert service.metrics.failed == 1

    def test_expired_request_is_not_solved(self):
        with inline_service() as service:
            ticket = service.submit(make_problem(input_gb=5.0), deadline_s=1e-6)
            result = ticket.result(timeout=30.0)
        assert result.status is RequestStatus.EXPIRED
        assert service.metrics.expired == 1

    def test_stopped_service_refuses_new_work(self):
        from repro.service import AdmissionError

        service = inline_service()
        problem = make_problem(input_gb=3.5)
        with service:
            cached = service.submit(problem).result(timeout=120.0)
        assert cached.ok
        with pytest.raises(AdmissionError):
            service.submit(make_problem(input_gb=7.5))
        # Cache hits still work after shutdown: no solver needed.
        result = service.submit(problem).result(timeout=1.0)
        assert result.cached and result.ok


class TestConcurrency:
    def test_parallel_submits_return_independent_correct_plans(self):
        """N parallel submits of distinct problems -> each gets its own
        correct plan (the satellite's concurrency requirement)."""
        problems = [make_problem(input_gb=gb, deadline=3.0) for gb in (2.0, 4.0, 6.0)]
        expected = {
            problem_fingerprint(p): Planner().plan(p).predicted_cost
            for p in problems
        }
        service = PlanningService(
            ServiceConfig(pool_mode="thread", max_workers=2)
        )
        results = {}
        errors = []

        def submit(problem, index):
            try:
                results[index] = service.submit(
                    problem, tenant=f"tenant-{index}"
                ).result(timeout=300.0)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        with service:
            threads = [
                threading.Thread(target=submit, args=(p, i))
                for i, p in enumerate(problems)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300.0)
        assert not errors
        assert len(results) == len(problems)
        for index, problem in enumerate(problems):
            result = results[index]
            assert result.ok
            assert result.plan.predicted_cost == pytest.approx(
                expected[problem_fingerprint(problem)], rel=1e-6
            )

    def test_identical_inflight_submits_coalesce_or_hit(self):
        problem = make_problem(input_gb=6.0)
        service = PlanningService(ServiceConfig(pool_mode="thread", max_workers=1))
        with service:
            first = service.submit(problem)
            second = service.submit(problem)
            r1 = first.result(timeout=300.0)
            r2 = second.result(timeout=300.0)
        assert r1.ok and r2.ok
        # The duplicate never pays for a second solve: it either coalesced
        # onto the in-flight solve or hit the cache just after it landed.
        assert not r1.cached
        assert r2.cached
        assert service.metrics.cache_misses == 1
        assert r2.plan.predicted_cost == pytest.approx(r1.plan.predicted_cost)

    def test_budget_shaped_failure_does_not_poison_coalesced_waiter(self):
        """A duplicate request must not inherit the outcome of a solve
        that was cut short by the *primary's* tiny time budget."""
        problem = make_problem(input_gb=6.5)
        service = PlanningService(ServiceConfig(pool_mode="thread", max_workers=1))
        with service:
            primary = service.submit(problem, time_budget_s=1e-3)
            waiter = service.submit(problem)
            primary_result = primary.result(timeout=300.0)
            waiter_result = waiter.result(timeout=300.0)
        # Whatever the budget did to the primary, the unconstrained
        # duplicate gets a real plan.
        assert waiter_result.ok
        if not primary_result.ok:
            assert waiter_result.plan is not None

    def test_broken_pool_fails_fast_without_wedging_the_service(self):
        """A pool.submit crash must not leak the worker slot or strand
        later identical requests on a dead in-flight entry."""
        problem = make_problem(input_gb=2.5)
        with inline_service() as service:
            healthy_submit = service.pool.submit

            def broken_submit(*args, **kwargs):
                raise RuntimeError("pool broke")

            service.pool.submit = broken_submit
            failed = service.submit(problem).result(timeout=30.0)
            assert failed.status is RequestStatus.FAILED
            assert "pool broke" in failed.error

            service.pool.submit = healthy_submit
            recovered = service.submit(problem).result(timeout=120.0)
        assert recovered.ok and not recovered.cached

    def test_submit_after_stop_does_not_restart_dispatcher(self):
        from repro.service import AdmissionError

        service = inline_service()
        with service:
            pass
        with pytest.raises(AdmissionError):
            service.submit(make_problem(input_gb=2.25))
        assert not service._running
        assert service._dispatcher is None

    def test_process_pool_smoke(self):
        """The default (process) pool round-trips problems and plans."""
        problem = make_problem(input_gb=2.0)
        service = PlanningService(ServiceConfig(pool_mode="process", max_workers=2))
        with service:
            result = service.submit(problem).result(timeout=300.0)
        assert result.ok
        direct = Planner().plan(problem)
        assert result.plan.predicted_cost == pytest.approx(
            direct.predicted_cost, rel=1e-6
        )


class TestModelReuse:
    def test_thread_pool_populates_model_cache(self):
        problem = make_problem(input_gb=3.0)
        fingerprint = problem_fingerprint(problem)
        with inline_service() as service:
            service.submit(problem).result(timeout=120.0)
            assert fingerprint in service.model_cache
            # Drop the plan but keep the model: the next identical request
            # re-solves the warm BuiltModel instead of rebuilding.
            service.plan_cache.clear()
            result = service.submit(problem).result(timeout=120.0)
        assert result.ok and not result.cached
        assert service.model_cache.stats.hits >= 1


class TestConfigValidation:
    def test_unknown_pool_mode_rejected(self):
        with pytest.raises(ValueError, match="pool mode"):
            PlanningService(ServiceConfig(pool_mode="fiber"))

    def test_bad_request_arguments_rejected(self):
        with inline_service() as service:
            with pytest.raises(ValueError):
                service.submit(make_problem(), tenant="")
            with pytest.raises(ValueError):
                service.submit(make_problem(), deadline_s=-1.0)
