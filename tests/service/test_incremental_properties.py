"""Property suite: incremental solves agree with cold solves.

Strict mode pins the contract the replan hot path relies on: a warm
answer is only accepted when proven optimal against the fresh root
bound, so across randomized data perturbations the incremental solver
must reproduce the cold objective to 1e-9 relative — or fall back to
the cold path outright (structural changes, failed certification).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Goal, NetworkConditions, PlannerJob, PlanningProblem
from repro.core.planner import Planner
from repro.cloud import public_cloud
from repro.service import IncrementalSolver

DEADLINES = (2.0, 3.0)  # two horizons -> two structural fingerprints


def make_problem(uplink: float, input_gb: float, deadline: float,
                 price_factor: float) -> PlanningProblem:
    services = [
        s.replace(price_per_node_hour=s.price_per_node_hour * price_factor)
        if s.can_compute
        else s
        for s in public_cloud()
    ]
    return PlanningProblem(
        job=PlannerJob(name="job", input_gb=input_gb),
        services=services,
        network=NetworkConditions.from_mbit_s(uplink),
        goal=Goal.min_cost(deadline_hours=deadline),
    )


perturbations = st.tuples(
    st.floats(min_value=14.0, max_value=18.0),   # uplink: bounds/RHS drift
    st.floats(min_value=1.5, max_value=2.5),     # input: RHS drift
    st.sampled_from(DEADLINES),                  # horizon: structure switch
    st.floats(min_value=0.9, max_value=1.1),     # price: objective drift
)


class TestPlanningLevelAgreement:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(series=st.lists(perturbations, min_size=1, max_size=3))
    def test_strict_incremental_equals_cold(self, series):
        solver = IncrementalSolver(strict=True, mip_gap=1e-9)
        cold = Planner(mip_gap=1e-9)
        solver.solve(make_problem(16.0, 2.0, DEADLINES[0], 1.0))  # seed
        for uplink, input_gb, deadline, price in series:
            problem = make_problem(uplink, input_gb, deadline, price)
            warm_plan = solver.solve(problem)
            cold_plan = cold.plan(problem)
            assert warm_plan.solver_status == "optimal"
            assert cold_plan.solver_status == "optimal"
            # Strict warm answers are proven optimal against the fresh
            # root bound, so they match cold to solver precision ...
            assert abs(warm_plan.objective_value - cold_plan.objective_value) <= (
                1e-9 * max(1.0, abs(cold_plan.objective_value))
            )
            # ... and stay feasible: the plan meets its deadline.
            assert warm_plan.predicted_completion_hours <= deadline + 1e-6
        # Every solve is accounted for, whichever path answered it.
        assert solver.stats.solves == 1 + len(series)

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(uplink=st.floats(min_value=14.0, max_value=18.0))
    def test_structure_switches_fall_back_cold_and_stay_correct(self, uplink):
        solver = IncrementalSolver(strict=True, mip_gap=1e-9)
        cold = Planner(mip_gap=1e-9)
        for deadline in (DEADLINES[0], DEADLINES[1], DEADLINES[0]):
            problem = make_problem(uplink, 2.0, deadline, 1.0)
            warm_plan = solver.solve(problem)
            cold_plan = cold.plan(problem)
            assert abs(warm_plan.objective_value - cold_plan.objective_value) <= (
                1e-9 * max(1.0, abs(cold_plan.objective_value))
            )
        # The third solve found its horizon's entry retained (an LRU with
        # capacity for both shapes): no structural fallbacks, some reuse.
        assert solver.stats.structural_fallbacks == 0
        assert solver.stats.solves == 3


class TestBatchAgreement:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(uplinks=st.lists(
        st.floats(min_value=15.5, max_value=16.5), min_size=2, max_size=4
    ))
    def test_solve_many_matches_solo_cold_solves(self, uplinks):
        solver = IncrementalSolver(strict=True, mip_gap=1e-9)
        cold = Planner(mip_gap=1e-9)
        solver.solve(make_problem(16.0, 2.0, DEADLINES[0], 1.0))  # seed
        problems = [make_problem(u, 2.0, DEADLINES[0], 1.0) for u in uplinks]
        results = solver.solve_many(problems)
        for problem, result in zip(problems, results):
            cold_plan = cold.plan(problem)
            assert result.objective_value == pytest.approx(
                cold_plan.objective_value, rel=1e-9, abs=1e-9
            )
