"""Request broker: admission control and dispatch ordering."""

import pytest

from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, PlannerJob, PlanningProblem
from repro.service import AdmissionError, PlanRequest, RequestBroker, SubmittedRequest

PROBLEM = PlanningProblem(
    job=PlannerJob(name="job", input_gb=4.0),
    services=public_cloud(),
    network=NetworkConditions.from_mbit_s(16.0),
    goal=Goal.min_cost(deadline_hours=3.0),
)

_ids = iter(range(1, 10_000))


def ticket(tenant="t0", priority=1, deadline_s=None) -> SubmittedRequest:
    request = PlanRequest(
        tenant=tenant, problem=PROBLEM, priority=priority, deadline_s=deadline_s
    )
    return SubmittedRequest(request, next(_ids), "fp")


class TestAdmission:
    def test_per_tenant_bound(self):
        broker = RequestBroker(max_pending_total=10, max_pending_per_tenant=2)
        broker.submit(ticket("a"))
        broker.submit(ticket("a"))
        with pytest.raises(AdmissionError, match="tenant 'a'"):
            broker.submit(ticket("a"))
        # Other tenants are unaffected by a's full queue.
        broker.submit(ticket("b"))
        assert broker.pending == 3

    def test_total_bound(self):
        broker = RequestBroker(max_pending_total=2, max_pending_per_tenant=2)
        broker.submit(ticket("a"))
        broker.submit(ticket("b"))
        with pytest.raises(AdmissionError, match="backlog full"):
            broker.submit(ticket("c"))

    def test_closed_broker_refuses(self):
        broker = RequestBroker()
        broker.close()
        with pytest.raises(AdmissionError, match="closed"):
            broker.submit(ticket())

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            RequestBroker(max_pending_total=0)


class TestOrdering:
    def test_priority_wins_across_tenants(self):
        broker = RequestBroker()
        late_urgent = ticket("b", priority=0)
        broker.submit(ticket("a", priority=1))
        broker.submit(late_urgent)
        assert broker.pop(timeout=0.1) is late_urgent

    def test_deadline_breaks_priority_ties(self):
        broker = RequestBroker()
        relaxed = ticket("a", priority=1, deadline_s=60.0)
        tight = ticket("b", priority=1, deadline_s=5.0)
        broker.submit(relaxed)
        broker.submit(tight)
        assert broker.pop(timeout=0.1) is tight
        assert broker.pop(timeout=0.1) is relaxed

    def test_fifo_within_tenant_and_priority(self):
        broker = RequestBroker()
        first = ticket("a")
        second = ticket("a")
        broker.submit(first)
        broker.submit(second)
        assert broker.pop(timeout=0.1) is first
        assert broker.pop(timeout=0.1) is second

    def test_no_deadline_sorts_after_any_deadline(self):
        broker = RequestBroker()
        unbounded = ticket("a", priority=1)
        bounded = ticket("b", priority=1, deadline_s=3600.0)
        broker.submit(unbounded)
        broker.submit(bounded)
        assert broker.pop(timeout=0.1) is bounded


class TestLifecycle:
    def test_pop_times_out_empty(self):
        broker = RequestBroker()
        assert broker.pop(timeout=0.01) is None

    def test_drain_returns_backlog(self):
        broker = RequestBroker()
        tickets = [ticket("a"), ticket("b"), ticket("a")]
        for t in tickets:
            broker.submit(t)
        drained = broker.drain()
        assert sorted(t.request_id for t in drained) == sorted(
            t.request_id for t in tickets
        )
        assert broker.pending == 0

    def test_introspection(self):
        broker = RequestBroker()
        broker.submit(ticket("a"))
        broker.submit(ticket("a"))
        broker.submit(ticket("b"))
        assert broker.pending == 3
        assert broker.pending_for("a") == 2
        assert broker.pending_for("missing") == 0
        assert set(broker.tenants()) == {"a", "b"}
