"""Fingerprint tests: equal problems collide, perturbed problems don't."""

import pytest

from repro.cloud import public_cloud
from repro.core import (
    Goal,
    NetworkConditions,
    PlannerJob,
    PlanningProblem,
    SystemState,
)
from repro.service import problem_fingerprint


def make_problem(**overrides) -> PlanningProblem:
    defaults = dict(
        job=PlannerJob(name="job", input_gb=16.0),
        services=public_cloud(),
        network=NetworkConditions.from_mbit_s(16.0),
        goal=Goal.min_cost(deadline_hours=6.0),
    )
    defaults.update(overrides)
    return PlanningProblem(**defaults)


class TestEquality:
    def test_identical_problems_hash_equal(self):
        assert problem_fingerprint(make_problem()) == problem_fingerprint(
            make_problem()
        )

    def test_job_name_is_ignored(self):
        renamed = make_problem(job=PlannerJob(name="other", input_gb=16.0))
        assert problem_fingerprint(renamed) == problem_fingerprint(make_problem())

    def test_service_order_is_ignored(self):
        reordered = make_problem(services=list(reversed(public_cloud())))
        assert problem_fingerprint(reordered) == problem_fingerprint(make_problem())

    def test_none_state_equals_initial_state(self):
        explicit = make_problem(
            state=SystemState.initial(PlannerJob(name="job", input_gb=16.0))
        )
        assert problem_fingerprint(explicit) == problem_fingerprint(make_problem())

    def test_dict_insertion_order_is_ignored(self):
        a = make_problem(upload_fractions={"s3": 0.5, "ec2.m1.large": 0.25})
        b = make_problem(upload_fractions={"ec2.m1.large": 0.25, "s3": 0.5})
        assert problem_fingerprint(a) == problem_fingerprint(b)


class TestPerturbation:
    BASE = None

    def setup_method(self):
        self.base = problem_fingerprint(make_problem())

    def differs(self, problem) -> bool:
        return problem_fingerprint(problem) != self.base

    def test_input_size(self):
        assert self.differs(make_problem(job=PlannerJob(name="job", input_gb=17.0)))

    def test_job_ratio(self):
        assert self.differs(
            make_problem(job=PlannerJob(name="job", input_gb=16.0,
                                        map_output_ratio=0.01))
        )

    def test_service_price(self):
        services = public_cloud()
        services[0] = services[0].replace(price_per_node_hour=0.35)
        assert self.differs(make_problem(services=services))

    def test_service_throughput(self):
        services = public_cloud()
        services[0] = services[0].replace(throughput_gb_per_hour=0.5)
        assert self.differs(make_problem(services=services))

    def test_deadline(self):
        assert self.differs(make_problem(goal=Goal.min_cost(deadline_hours=7.0)))

    def test_goal_kind(self):
        assert self.differs(make_problem(goal=Goal.min_time(budget_usd=30.0)))

    def test_network(self):
        assert self.differs(make_problem(network=NetworkConditions.from_mbit_s(32.0)))

    def test_spot_estimates(self):
        services = public_cloud()
        services[0] = services[0].replace(is_spot=True)
        with_estimate = make_problem(
            services=services,
            spot_price_estimates={services[0].name: [0.2] * 6},
        )
        other_bid = make_problem(
            services=services,
            spot_price_estimates={services[0].name: [0.3] * 6},
        )
        assert self.differs(with_estimate)
        assert problem_fingerprint(with_estimate) != problem_fingerprint(other_bid)

    def test_upload_fractions(self):
        assert self.differs(make_problem(upload_fractions={"s3": 0.5}))

    def test_state_progress(self):
        moved = SystemState(
            source_remaining_gb=8.0, stored_input={"s3": 8.0}, hour=1.0
        )
        assert self.differs(make_problem(state=moved))

    def test_model_flags(self):
        assert self.differs(make_problem(constant_nodes=True))
        assert self.differs(make_problem(allow_migration=False))
        assert self.differs(make_problem(strict_phase_gap=True))
        assert self.differs(make_problem(upload_read_lag=1))
        assert self.differs(make_problem(interval_hours=0.5))


class TestEncoding:
    def test_fingerprint_is_hex_sha256(self):
        digest = problem_fingerprint(make_problem())
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_numpy_estimate_series_accepted(self):
        numpy = pytest.importorskip("numpy")
        services = public_cloud()
        services[0] = services[0].replace(is_spot=True)
        listy = make_problem(
            services=services,
            spot_price_estimates={services[0].name: [0.2] * 6},
        )
        arraylike = make_problem(
            services=services,
            spot_price_estimates={services[0].name: numpy.full(6, 0.2)},
        )
        assert problem_fingerprint(listy) == problem_fingerprint(arraylike)
