"""Service metrics: percentiles must be defined for every sample size."""

import pytest

from repro.service import LatencySeries, ServiceMetrics, percentile


class TestPercentile:
    def test_empty_sample_is_defined(self):
        for p in (0.0, 50.0, 99.0, 100.0):
            assert percentile([], p) == 0.0

    def test_singleton_sample_is_its_element(self):
        for p in (0.0, 50.0, 99.0, 100.0):
            assert percentile([3.5], p) == 3.5

    def test_out_of_range_p_raises_for_every_sample_size(self):
        # The check applies uniformly — an empty sample must not bypass
        # the validation the two-element sample enforces.
        for sample in ([], [1.0], [1.0, 2.0]):
            with pytest.raises(ValueError):
                percentile(sample, -1.0)
            with pytest.raises(ValueError):
                percentile(sample, 100.5)

    def test_interpolates_between_ranks(self):
        data = [0.0, 10.0]
        assert percentile(data, 50.0) == 5.0
        assert percentile(data, 0.0) == 0.0
        assert percentile(data, 100.0) == 10.0

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0


class TestLatencySeries:
    def test_summary_defined_when_empty(self):
        summary = LatencySeries().summary()
        assert summary["count"] == 0.0
        assert summary["p50_s"] == 0.0
        assert summary["p99_s"] == 0.0
        assert summary["max_s"] == 0.0

    def test_summary_defined_for_singleton(self):
        series = LatencySeries()
        series.record(0.25)
        summary = series.summary()
        assert summary["count"] == 1.0
        assert summary["mean_s"] == 0.25
        assert summary["p50_s"] == 0.25
        assert summary["p99_s"] == 0.25
        assert summary["max_s"] == 0.25


class TestServiceMetrics:
    def test_describe_works_before_any_request(self):
        # A freshly started service's dashboard poll must not raise.
        text = ServiceMetrics().describe()
        assert "requests:" in text
        assert "p99" in text

    def test_describe_after_single_completion(self):
        metrics = ServiceMetrics()
        metrics.record_submitted()
        metrics.record_completion("acme", cached=False, solve_s=0.5, total_s=0.6)
        snap = metrics.snapshot()
        assert snap["completed"] == 1
        assert snap["solve_latency"]["p99_s"] == 0.5
