"""Service metrics: percentiles must be defined for every sample size."""

import pytest

from repro.service import LatencySeries, ServiceMetrics, percentile


class TestPercentile:
    def test_empty_sample_is_defined(self):
        for p in (0.0, 50.0, 99.0, 100.0):
            assert percentile([], p) == 0.0

    def test_singleton_sample_is_its_element(self):
        for p in (0.0, 50.0, 99.0, 100.0):
            assert percentile([3.5], p) == 3.5

    def test_out_of_range_p_raises_for_every_sample_size(self):
        # The check applies uniformly — an empty sample must not bypass
        # the validation the two-element sample enforces.
        for sample in ([], [1.0], [1.0, 2.0]):
            with pytest.raises(ValueError):
                percentile(sample, -1.0)
            with pytest.raises(ValueError):
                percentile(sample, 100.5)

    def test_interpolates_between_ranks(self):
        data = [0.0, 10.0]
        assert percentile(data, 50.0) == 5.0
        assert percentile(data, 0.0) == 0.0
        assert percentile(data, 100.0) == 10.0

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0


class TestLatencySeries:
    def test_summary_defined_when_empty(self):
        summary = LatencySeries().summary()
        assert summary["count"] == 0.0
        assert summary["p50_s"] == 0.0
        assert summary["p99_s"] == 0.0
        assert summary["max_s"] == 0.0

    def test_summary_defined_for_singleton(self):
        series = LatencySeries()
        series.record(0.25)
        summary = series.summary()
        assert summary["count"] == 1.0
        assert summary["mean_s"] == 0.25
        assert summary["p50_s"] == 0.25
        assert summary["p99_s"] == 0.25
        assert summary["max_s"] == 0.25


class TestServiceMetrics:
    def test_describe_works_before_any_request(self):
        # A freshly started service's dashboard poll must not raise.
        text = ServiceMetrics().describe()
        assert "requests:" in text
        assert "p99" in text

    def test_describe_after_single_completion(self):
        metrics = ServiceMetrics()
        metrics.record_submitted()
        metrics.record_completion("acme", cached=False, solve_s=0.5, total_s=0.6)
        snap = metrics.snapshot()
        assert snap["completed"] == 1
        assert snap["solve_latency"]["p99_s"] == 0.5


class TestMergedShardMetrics:
    @staticmethod
    def shard_metrics(shard, completions):
        metrics = ServiceMetrics(shard=shard)
        for tenant, total_s in completions:
            metrics.record_submitted()
            metrics.record_completion(
                tenant, cached=False, solve_s=total_s / 2, total_s=total_s
            )
        return metrics

    def test_counters_add_and_series_concatenate_exactly(self):
        parts = [
            self.shard_metrics(0, [("a", 0.2), ("a", 0.4)]),
            self.shard_metrics(1, [("b", 0.6)]),
        ]
        merged = ServiceMetrics.merge(parts)
        assert merged.submitted == 3
        assert merged.completed == 3
        assert merged.per_tenant_completed == {"a": 2, "b": 1}
        # Percentiles come from the concatenated raw samples — exact,
        # not an average of per-shard percentiles.
        summary = merged.turnaround.summary()
        assert summary["count"] == 3.0
        assert summary["p50_s"] == pytest.approx(0.4)
        assert summary["max_s"] == pytest.approx(0.6)

    def test_per_shard_labels_and_utilization_gauges(self):
        parts = [
            self.shard_metrics(0, [("a", 0.1), ("a", 0.1), ("a", 0.1)]),
            self.shard_metrics(1, [("b", 0.1)]),
        ]
        merged = ServiceMetrics.merge(parts)
        snapshot = merged.registry.snapshot()
        assert snapshot["counters"]["completed"] == 4
        assert snapshot["counters"]["completed{shard=0}"] == 3
        assert snapshot["counters"]["completed{shard=1}"] == 1
        assert snapshot["gauges"]["shard_utilization{shard=0}"] == 0.75
        assert snapshot["gauges"]["shard_utilization{shard=1}"] == 0.25

    def test_empty_parts_keep_defined_percentiles(self):
        merged = ServiceMetrics.merge(
            [ServiceMetrics(shard=0), ServiceMetrics(shard=1)]
        )
        assert merged.completed == 0
        summary = merged.turnaround.summary()
        assert summary["count"] == 0.0
        assert summary["p50_s"] == 0.0
        assert summary["p95_s"] == 0.0
        assert summary["p99_s"] == 0.0
        # No completions anywhere: utilization is a defined 0, not NaN.
        snapshot = merged.registry.snapshot()
        assert snapshot["gauges"]["shard_utilization{shard=0}"] == 0.0

    def test_merge_of_nothing_is_empty(self):
        merged = ServiceMetrics.merge([])
        assert merged.submitted == 0
        assert merged.describe()  # defined, renders

    def test_unsharded_parts_merge_without_labels(self):
        parts = [
            self.shard_metrics(None, [("a", 0.2)]),
            self.shard_metrics(None, [("b", 0.4)]),
        ]
        merged = ServiceMetrics.merge(parts)
        snapshot = merged.registry.snapshot()
        assert snapshot["counters"]["completed"] == 2
        assert not any("{shard=" in name for name in snapshot["counters"])
