"""The Orchestrator facade: plan / submit / deploy / structured errors."""

import pytest

from repro.api import (
    DeployEventV1,
    ErrorV1,
    GoalSpec,
    JobSpec,
    Orchestrator,
    OrchestratorError,
    PlanRequestV1,
    decode,
    encode,
    error_v1_from_exception,
)
from repro.service import ServiceConfig

INLINE = ServiceConfig(pool_mode="inline", max_workers=1)

SPEC = JobSpec(input_gb=4.0, goal=GoalSpec(deadline_hours=3.0))
INFEASIBLE = JobSpec(input_gb=64.0, goal=GoalSpec(deadline_hours=2.0))


class TestPlan:
    def test_plan_solves_a_spec(self):
        plan = Orchestrator().plan(SPEC)
        assert plan.solver_status == "optimal"
        assert plan.predicted_cost > 0

    def test_plan_matches_direct_planner(self):
        """The facade adds declaration, not a different optimum."""
        from repro.core import Planner

        orchestrator = Orchestrator()
        direct = Planner().plan(orchestrator.compile(SPEC))
        via_api = orchestrator.plan(SPEC)
        assert via_api.predicted_cost == pytest.approx(direct.predicted_cost)

    def test_infeasible_spec_raises_structured_error(self):
        with pytest.raises(OrchestratorError) as excinfo:
            Orchestrator().plan(INFEASIBLE)
        assert excinfo.value.error.code == "infeasible"

    def test_budget_goal_maps_to_budget_exceeded(self):
        spec = JobSpec(
            input_gb=8.0,
            goal=GoalSpec(objective="minimize-time", budget_usd=0.01,
                          deadline_hours=4.0),
        )
        with pytest.raises(OrchestratorError) as excinfo:
            Orchestrator().plan(spec)
        assert excinfo.value.error.code == "budget_exceeded"

    def test_missing_catalog_file_is_bad_request(self):
        spec = JobSpec(catalog="xml", services_xml="/nonexistent.xml")
        with pytest.raises(OrchestratorError) as excinfo:
            Orchestrator().plan(spec)
        assert excinfo.value.error.code == "bad_request"


class TestSubmit:
    def test_submit_and_cache_hit(self):
        with Orchestrator(service_config=INLINE) as orchestrator:
            first = orchestrator.submit(SPEC).result(timeout=120.0)
            second = orchestrator.submit(SPEC).result(timeout=120.0)
        assert first.ok and not first.cached
        assert second.ok and second.cached
        assert first.error_code == ""

    def test_plan_v1_round_trip(self):
        request = PlanRequestV1(job=SPEC, tenant="acme", request_id="r-1")
        with Orchestrator(service_config=INLINE) as orchestrator:
            response = orchestrator.plan_v1(request, timeout=120.0)
        assert response.ok
        assert response.status == "completed"
        assert response.tenant == "acme"
        assert response.request_id == "r-1"
        assert response.predicted_cost > 0
        assert response.peak_nodes >= 1
        assert response.solver_status == "optimal"
        assert decode(encode(response)) == response

    def test_failed_solve_carries_stable_code(self):
        """Satellite fix: no more stringified-exception-only errors."""
        request = PlanRequestV1(job=INFEASIBLE, tenant="acme")
        with Orchestrator(service_config=INLINE) as orchestrator:
            response = orchestrator.plan_v1(request, timeout=120.0)
        assert response.status == "failed"
        assert isinstance(response.error, ErrorV1)
        assert response.error.code == "infeasible"
        assert decode(encode(response)) == response

    def test_result_error_code_populated_by_service(self):
        with Orchestrator(service_config=INLINE) as orchestrator:
            result = orchestrator.submit(INFEASIBLE).result(timeout=120.0)
        assert result.status.value == "failed"
        assert result.error_code == "infeasible"
        assert "infeasible" in result.error

    def test_shared_external_service(self):
        """An orchestrator wrapping a caller-owned service must not stop it."""
        from repro.service import PlanningService

        service = PlanningService(INLINE)
        with service:
            orchestrator = Orchestrator(service=service)
            result = orchestrator.submit(SPEC).result(timeout=120.0)
            assert result.ok
            orchestrator.close()
            # Still usable: close() must not have stopped the service.
            assert orchestrator.submit(SPEC).result(timeout=120.0).ok

    def test_submit_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="JobSpec"):
            Orchestrator(service_config=INLINE).submit("a string")


class TestDeploy:
    def test_deploy_streams_versioned_events(self):
        events = []
        orchestrator = Orchestrator()
        result = orchestrator.deploy(
            SPEC, tenant="acme", on_event=events.append
        )
        assert result.completed
        assert events, "deployment must stream at least one interval"
        assert all(isinstance(e, DeployEventV1) for e in events)
        assert all(e.tenant == "acme" for e in events)
        # Events round-trip through the wire format.
        assert decode(encode(events[0])) == events[0]
        # The stream is the deployment: indices advance, costs sum up.
        assert [e.index for e in events] == sorted(e.index for e in events)
        assert sum(e.cost for e in events) == pytest.approx(result.total_cost)

    def test_deploy_session_is_tracked(self):
        orchestrator = Orchestrator()
        orchestrator.deploy(SPEC, tenant="acme")
        assert orchestrator.sessions.sessions("acme")

    def test_spot_without_predictor_is_bad_request(self):
        spec = JobSpec(input_gb=4.0, goal=GoalSpec(deadline_hours=3.0),
                       catalog="spot")
        with pytest.raises(OrchestratorError) as excinfo:
            Orchestrator().deploy(spec)
        assert excinfo.value.error.code == "bad_request"


class TestErrorMapping:
    def test_exception_wrapping(self):
        from repro.core.model_builder import PlanningError

        error = error_v1_from_exception(
            PlanningError("nope", status="infeasible", budgeted=False)
        )
        assert error.code == "infeasible"
        error = error_v1_from_exception(
            PlanningError("nope", status="infeasible", budgeted=True)
        )
        assert error.code == "budget_exceeded"
        assert error_v1_from_exception(TimeoutError("slow")).code == "timeout"
        assert error_v1_from_exception(RuntimeError("?")).code == "internal"

    def test_planning_error_survives_pickling(self):
        """Process-pool workers ship PlanningError back by pickle; the
        structured state must survive the trip."""
        import pickle

        from repro.core.model_builder import PlanningError

        original = PlanningError("msg", status="infeasible", budgeted=True)
        clone = pickle.loads(pickle.dumps(original))
        assert str(clone) == "msg"
        assert clone.status == "infeasible"
        assert clone.budgeted is True

    def test_admission_rejection_maps_to_rejected(self):
        from repro.service import error_code_for_exception
        from repro.service.broker import AdmissionError

        assert error_code_for_exception(AdmissionError("full")) == "rejected"
