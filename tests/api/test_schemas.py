"""Schema round-trips, malformed-input and version-rejection paths."""

import json

import pytest

from repro.api import (
    SCHEMA_VERSION,
    DeployEventV1,
    ErrorV1,
    GoalSpec,
    HelloV1,
    JobSpec,
    NetworkSpec,
    PlanRequestV1,
    PlanResponseV1,
    SchemaError,
    decode,
    encode,
)

#: One representative, non-default instance of every schema type.
SAMPLES = [
    GoalSpec(objective="minimize-time", budget_usd=30.0, deadline_hours=12.0),
    NetworkSpec(uplink_mbit_s=32.0, downlink_mbit_s=64.0, local_mb_s=50.0),
    JobSpec(
        name="kmeans",
        input_gb=32.0,
        map_output_ratio=0.01,
        goal=GoalSpec(deadline_hours=8.0),
        network=NetworkSpec(uplink_mbit_s=24.0),
        catalog="hybrid",
        local_nodes=5,
        interval_hours=0.5,
        constant_nodes=True,
        allow_migration=False,
        upload_fractions={"aws.s3": 0.5},
    ),
    ErrorV1(code="infeasible", message="no plan", details={"hint": "relax"}),
    PlanRequestV1(
        job=JobSpec(input_gb=8.0, goal=GoalSpec(deadline_hours=4.0)),
        tenant="acme",
        priority=0,
        deadline_s=30.0,
        time_budget_s=5.0,
        request_id="r-42",
    ),
    PlanResponseV1(
        status="completed",
        tenant="acme",
        request_id="r-42",
        cached=True,
        fingerprint="abc123",
        predicted_cost=3.4,
        predicted_completion_hours=2.5,
        peak_nodes=16,
        solver_status="optimal",
        queue_wait_s=0.1,
        solve_s=1.5,
        total_s=1.7,
    ),
    PlanResponseV1(
        status="failed",
        error=ErrorV1(code="budget_exceeded", message="too tight"),
    ),
    DeployEventV1(
        index=3,
        start_hour=3.0,
        duration_hours=1.0,
        nodes={"aws.ec2": 16, "local": 5},
        uploaded_gb=4.5,
        map_gb=3.2,
        reduce_gb=0.1,
        downloaded_gb=0.0,
        cost=1.36,
        outbid_services=("aws.ec2.spot",),
        spot_data_lost_gb=0.25,
        tenant="acme",
        session_id=7,
    ),
    DeployEventV1(
        index=4,
        start_hour=4.0,
        duration_hours=0.0,
        tenant="acme",
        session_id=7,
        event="replan",
        trigger="eviction",
        reason="out-bid on aws.ec2.spot",
    ),
    HelloV1(version="0.3.0"),
]


class TestRoundTrips:
    @pytest.mark.parametrize(
        "message", SAMPLES, ids=lambda m: type(m).__name__
    )
    def test_from_dict_to_dict_identity(self, message):
        assert type(message).from_dict(message.to_dict()) == message

    @pytest.mark.parametrize(
        "message", SAMPLES, ids=lambda m: type(m).__name__
    )
    def test_json_wire_round_trip(self, message):
        """encode -> real JSON -> decode dispatches back to the same value."""
        line = encode(message)
        assert decode(line) == message
        # The wire form is a single JSON object with the envelope.
        payload = json.loads(line)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["kind"] == type(message).KIND

    def test_defaults_round_trip(self):
        for cls in (GoalSpec, NetworkSpec, JobSpec, HelloV1):
            assert cls.from_dict(cls().to_dict()) == cls()

    def test_numeric_coercion_preserves_equality(self):
        """Ints on the wire compare equal to the floats they stand for."""
        spec = JobSpec.from_dict({"input_gb": 8, "goal": {"deadline_hours": 4}})
        assert spec == JobSpec(input_gb=8.0, goal=GoalSpec(deadline_hours=4.0))


class TestVersionRejection:
    def test_decode_rejects_unknown_version(self):
        with pytest.raises(SchemaError, match="schema_version"):
            decode({"schema_version": 2, "kind": "plan_request", "job": {}})

    def test_decode_requires_version(self):
        with pytest.raises(SchemaError, match="missing schema_version"):
            decode({"kind": "hello"})

    def test_from_dict_rejects_unknown_version(self):
        payload = JobSpec().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(SchemaError, match="unsupported schema_version"):
            JobSpec.from_dict(payload)

    def test_constructor_rejects_unknown_version(self):
        with pytest.raises(SchemaError, match="unsupported schema_version"):
            JobSpec(schema_version=0)

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(SchemaError, match="unknown kind"):
            decode({"schema_version": 1, "kind": "teleport_request"})

    def test_from_dict_rejects_mismatched_kind(self):
        with pytest.raises(SchemaError, match="expected kind"):
            JobSpec.from_dict({"kind": "goal_spec"})


class TestMalformedInput:
    def test_decode_rejects_garbage(self):
        with pytest.raises(SchemaError, match="not valid JSON"):
            decode("not json at all")

    def test_decode_rejects_non_object(self):
        with pytest.raises(SchemaError, match="JSON object"):
            decode("[1, 2, 3]")

    def test_unknown_fields_rejected(self):
        with pytest.raises(SchemaError, match="unknown fields"):
            JobSpec.from_dict({"input_gb": 8, "warp_factor": 9})

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError, match="input_gb"):
            JobSpec.from_dict({"input_gb": "lots"})
        with pytest.raises(SchemaError, match="must be a boolean"):
            JobSpec.from_dict({"constant_nodes": "yes"})

    def test_bool_is_not_a_number(self):
        with pytest.raises(SchemaError, match="input_gb"):
            JobSpec.from_dict({"input_gb": True})

    def test_missing_required_field_rejected(self):
        with pytest.raises(SchemaError, match="job"):
            PlanRequestV1.from_dict({"tenant": "acme"})
        with pytest.raises(SchemaError, match="code"):
            ErrorV1.from_dict({"message": "boom"})

    def test_semantic_validation(self):
        with pytest.raises(SchemaError, match="input_gb"):
            JobSpec(input_gb=-1.0)
        with pytest.raises(SchemaError, match="catalog"):
            JobSpec(catalog="warp")
        with pytest.raises(SchemaError, match="local_nodes"):
            JobSpec(catalog="hybrid", local_nodes=0)
        with pytest.raises(SchemaError, match="services_xml"):
            JobSpec(catalog="xml")
        with pytest.raises(SchemaError, match="deadline"):
            GoalSpec(deadline_hours=None)
        with pytest.raises(SchemaError, match="budget"):
            GoalSpec(objective="minimize-time")
        with pytest.raises(SchemaError, match="status"):
            PlanResponseV1(status="exploded")
        with pytest.raises(SchemaError, match="error code"):
            ErrorV1(code="whoopsie")
        with pytest.raises(SchemaError, match="tenant"):
            PlanRequestV1(job=JobSpec(), tenant="")

    def test_schema_error_is_a_value_error(self):
        """Callers that predate the API still catch these."""
        assert issubclass(SchemaError, ValueError)


class TestCompilation:
    def test_goal_spec_compiles_to_goal(self):
        from repro.core import GoalKind

        goal = GoalSpec(deadline_hours=6.0).to_goal()
        assert goal.kind is GoalKind.MINIMIZE_COST
        assert goal.deadline_hours == 6.0
        timed = GoalSpec(
            objective="minimize-time", budget_usd=30.0, deadline_hours=12.0
        ).to_goal()
        assert timed.kind is GoalKind.MINIMIZE_TIME
        assert timed.budget_usd == 30.0
        assert GoalSpec.from_goal(goal) == GoalSpec(deadline_hours=6.0)

    def test_network_spec_defaults_match_core_defaults(self):
        from repro.core import NetworkConditions

        assert NetworkSpec().to_conditions() == NetworkConditions()

    def test_network_spec_symmetric_downlink(self):
        conditions = NetworkSpec(uplink_mbit_s=32.0).to_conditions()
        assert conditions.uplink_gb_per_hour == conditions.downlink_gb_per_hour

    def test_job_spec_compiles_to_planner_job(self):
        spec = JobSpec(name="wc", input_gb=8.0, map_output_ratio=0.5)
        job = spec.to_planner_job()
        assert job.name == "wc"
        assert job.input_gb == 8.0
        assert job.map_output_ratio == 0.5


class TestDeployEventKinds:
    """The additive ``event``/``trigger``/``reason`` fields (fleet work)."""

    def test_pre_fleet_payload_still_decodes(self):
        # A v1 payload written before the replan kind existed carries no
        # event field; it must decode as a plain interval event.
        payload = {
            "schema_version": 1, "kind": "deploy_event",
            "index": 1, "start_hour": 0.0, "duration_hours": 1.0,
        }
        event = DeployEventV1.from_dict(payload)
        assert event.event == "interval"
        assert event.trigger == "" and event.reason == ""

    def test_unknown_event_kind_is_rejected(self):
        with pytest.raises(SchemaError, match="deploy event kind"):
            DeployEventV1(index=1, start_hour=0.0, duration_hours=1.0,
                          event="reboot")

    def test_from_replan_wraps_a_record(self):
        from repro.core.controller import ReplanRecord

        record = ReplanRecord(hour=5.0, kind="price",
                              reason="spot price deviation", plan_index=2)
        event = DeployEventV1.from_replan(
            record, tenant="acme", session_id=3, index=4
        )
        assert event.event == "replan"
        assert event.trigger == "price"
        assert event.reason == "spot price deviation"
        assert event.start_hour == 5.0
        assert event.duration_hours == 0.0
        assert event.index == 4
        assert decode(encode(event)) == event
