"""Front-end adapters: pig / mapreduce / scenario shorthand -> JobSpec."""

import pytest

from repro.api import (
    GoalSpec,
    JobSpec,
    NetworkSpec,
    SchemaError,
    compile_spec,
    from_mapreduce_job,
    from_pig,
    from_workload,
)

PIG_SCRIPT = (
    "a = LOAD 'clicks' AS (url:chararray, site:chararray, ms:int);\n"
    "g = GROUP a BY site;\n"
    "c = FOREACH g GENERATE group, COUNT(a) AS hits;\n"
    "STORE c INTO 'out';\n"
)


class TestFromPig:
    def test_one_spec_per_stage(self):
        specs = from_pig(PIG_SCRIPT, input_gb=8.0,
                         goal=GoalSpec(deadline_hours=6.0))
        assert len(specs) == 1
        spec = specs[0]
        assert isinstance(spec, JobSpec)
        assert spec.input_gb == pytest.approx(8.0)
        assert spec.goal.deadline_hours == 6.0
        assert spec.map_output_ratio > 0
        assert 0 < spec.reduce_output_ratio < 1

    def test_explicit_load_sizes(self):
        specs = from_pig(PIG_SCRIPT, input_gb={"clicks": 4.0})
        assert specs[0].input_gb == pytest.approx(4.0)

    def test_specs_compile(self):
        for spec in from_pig(PIG_SCRIPT, input_gb=8.0):
            problem = compile_spec(spec)
            assert problem.job.input_gb > 0


class TestFromMapReduceJob:
    def test_lifts_task_level_job(self):
        from repro.mapreduce.job import MapReduceJob

        job = MapReduceJob(
            name="wc",
            input_path="/data/in",
            input_mb=8192.0,
            map_output_ratio=0.1,
            reduce_output_ratio=0.5,
            reduce_speed_factor=2.0,
        )
        spec = from_mapreduce_job(job, goal=GoalSpec(deadline_hours=6.0))
        assert spec.name == "wc"
        assert spec.input_gb == pytest.approx(8.0)
        assert spec.map_output_ratio == 0.1
        assert spec.reduce_output_ratio == 0.5
        assert spec.reduce_speed_factor == 2.0
        problem = compile_spec(spec)
        assert problem.job.input_gb == pytest.approx(8.0)


class TestFromWorkload:
    def test_quickstart_matches_legacy_scenario_problem(self):
        """The adapter + compiler reproduce the service's old scenario
        problems exactly (same fingerprint => same cache entries)."""
        from repro.service import problem_fingerprint, problem_for_scenario

        for scenario in ("quickstart", "hybrid", "spot", "pig"):
            spec = from_workload(scenario, input_gb=8.0, deadline_hours=6.0)
            compiled = compile_spec(spec)
            legacy = problem_for_scenario(
                scenario, input_gb=8.0, deadline_hours=6.0
            )
            assert problem_fingerprint(compiled) == problem_fingerprint(legacy)

    def test_spot_carries_estimates(self):
        problem = compile_spec(
            from_workload("spot", deadline_hours=8.0, spot_price=0.21)
        )
        spot_names = {s.name for s in problem.services if s.is_spot}
        assert set(problem.spot_price_estimates) == spot_names
        series = next(iter(problem.spot_price_estimates.values()))
        assert len(series) == 8 and series[0] == 0.21

    def test_hybrid_local_nodes(self):
        spec = from_workload("hybrid", local_nodes=3)
        assert spec.catalog == "hybrid"
        problem = compile_spec(spec)
        local = [s for s in problem.services if s.provider == "local"]
        assert len(local) == 1 and local[0].max_nodes == 3

    def test_pig_stage_selection(self):
        first = from_workload("pig", input_gb=8.0, stage=0)
        assert first.name.startswith("stage")

    def test_unknown_scenario_is_a_schema_error(self):
        with pytest.raises(SchemaError, match="unknown scenario"):
            from_workload("teleport")


class TestNetworkDefaults:
    def test_workload_spec_uses_requested_uplink(self):
        spec = from_workload("quickstart", uplink_mbit=32.0)
        assert spec.network == NetworkSpec(uplink_mbit_s=32.0)
