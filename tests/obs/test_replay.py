"""Deterministic replay: byte-identical re-emission, verify, resume.

The fleet scenario is chosen so its substrate narrates all three event
kinds — a spot eviction, an injected node failure and a price spike —
because the replay guarantee has to hold through the messy paths, not
just the happy one.  The deploy scenario is the chaos case: actual
throughput far below the believed catalog rates, forcing re-plans, then
the run is "killed" at snapshot boundaries and resumed.
"""

import dataclasses

import pytest

from repro.api import GoalSpec, JobSpec, NetworkSpec, Orchestrator
from repro.api.orchestrator import OrchestratorError
from repro.core.conditions import ActualConditions
from repro.obs.replay import (
    FLEET_DEFAULTS,
    deterministic_lines,
    fleet_inputs,
    resume,
    scenario_of,
    verify,
)
from repro.obs.trace import RunTracer, TraceCollector, TraceError

#: A short fleet run whose substrate emits an eviction, a failure and a
#: price spike (seed/start_hour found by search; pinned by the test).
FLEET_SCENARIO = {
    "deployments": 2,
    "days": 3,
    "deadline": 10.0,
    "input_gb": 2.0,
    "failure_rate": 0.08,
    "seed": 9,
    "start_hour": 36.0,
}

#: Ground truth far below the catalog's believed rates — forces the
#: controller to re-plan mid-flight (the Fig. 12 deviation mechanic).
CHAOS_RATES = {"ec2.m1.large": 0.25, "ec2.m1.xlarge": 0.5}


def run_fleet(scenario):
    collector = TraceCollector()
    tracer = RunTracer(collector)
    specs, substrate, config, predictor = fleet_inputs(scenario)
    tracer.begin("fleet", scenario)
    result = Orchestrator().fleet(
        specs, substrate, fleet_config=config, predictor=predictor,
        tracer=tracer,
    )
    return collector.records, result


def run_chaos_deploy():
    spec = JobSpec(
        name="chaos",
        input_gb=32.0,
        goal=GoalSpec(deadline_hours=6.0),
        network=NetworkSpec(uplink_mbit_s=16.0),
    )
    actual = ActualConditions(throughput_gb_per_hour=dict(CHAOS_RATES))
    collector = TraceCollector()
    tracer = RunTracer(collector)
    result = Orchestrator().deploy(
        spec, tenant="acme", actual=actual, tracer=tracer
    )
    return collector.records, result


@pytest.fixture(scope="module")
def fleet_log():
    return run_fleet(FLEET_SCENARIO)


@pytest.fixture(scope="module")
def deploy_log():
    return run_chaos_deploy()


class TestFleetReplay:
    def test_log_covers_the_messy_substrate_paths(self, fleet_log):
        records, _ = fleet_log
        kinds = {
            r.payload["event_kind"]
            for r in records
            if r.kind == "substrate_event"
        }
        assert {"eviction", "failure", "price"} <= kinds

    def test_same_scenario_twice_is_byte_identical(self, fleet_log):
        """Satellite: same seed + same scenario ⇒ identical re-emitted
        event stream, evictions and failures included."""
        first, _ = fleet_log
        second, _ = run_fleet(FLEET_SCENARIO)
        assert deterministic_lines(first) == deterministic_lines(second)

    def test_verify_passes_on_an_honest_log(self, fleet_log):
        records, _ = fleet_log
        report = verify(records)
        assert report.ok
        assert report.compared == len(deterministic_lines(records))
        assert "verified: streams identical" in report.describe()

    def test_verify_flags_a_tampered_log(self, fleet_log):
        records, _ = fleet_log
        tampered = list(records)
        index = next(
            i for i, r in enumerate(tampered) if r.kind == "interval"
        )
        payload = dict(tampered[index].payload)
        payload["cost"] = payload["cost"] + 1.0
        tampered[index] = dataclasses.replace(
            tampered[index], payload=payload
        )
        report = verify(tampered)
        assert not report.ok
        assert "DIVERGED" in report.describe()

    def test_truncated_log_resumes_to_the_same_result(self, fleet_log):
        records, result = fleet_log
        truncated = records[: 2 * len(records) // 3]
        resumed = resume(truncated)
        assert resumed.total_cost == result.total_cost
        assert resumed.total_replans == result.total_replans

    def test_resume_rejects_a_log_from_another_run(self, fleet_log):
        records, _ = fleet_log
        truncated = list(records[: 2 * len(records) // 3])
        index = next(
            i for i, r in enumerate(truncated) if r.kind == "interval"
        )
        payload = dict(truncated[index].payload)
        payload["cost"] = payload["cost"] + 1.0
        truncated[index] = dataclasses.replace(
            truncated[index], payload=payload
        )
        with pytest.raises(TraceError, match="not a prefix"):
            resume(truncated)

    def test_resume_rejects_a_complete_log(self, fleet_log):
        records, _ = fleet_log
        assert records[-1].kind == "run_end"
        with pytest.raises(TraceError, match="nothing to resume"):
            resume(records)


class TestDeployReplay:
    def test_chaos_run_actually_replans(self, deploy_log):
        _, result = deploy_log
        assert result.replans >= 2

    def test_verify_passes(self, deploy_log):
        records, _ = deploy_log
        assert verify(records).ok

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
    def test_crash_resume_from_any_snapshot(self, deploy_log, fraction):
        """Kill the run right after a snapshot; the rehydrated
        ControllerRun must converge to the original result."""
        records, result = deploy_log
        snapshots = [
            i for i, r in enumerate(records) if r.kind == "snapshot"
        ]
        cut = snapshots[int(fraction * (len(snapshots) - 1))]
        resumed = resume(records[: cut + 1])
        assert resumed.total_cost == result.total_cost
        assert resumed.completion_hours == result.completion_hours
        assert resumed.replans == result.replans
        assert resumed.completed == result.completed

    def test_crash_before_first_snapshot_reexecutes(self, deploy_log):
        records, result = deploy_log
        first_snapshot = next(
            i for i, r in enumerate(records) if r.kind == "snapshot"
        )
        resumed = resume(records[:first_snapshot])
        assert resumed.total_cost == result.total_cost

    def test_spot_trace_deploy_cannot_auto_begin(self):
        from repro.obs.replay import trace_for

        spec = JobSpec(name="spot-job", input_gb=2.0, catalog="spot")
        tracer = RunTracer(TraceCollector())
        with pytest.raises(OrchestratorError) as exc_info:
            Orchestrator().deploy(
                spec,
                trace=trace_for("aws", 1, 0),
                tracer=tracer,
            )
        assert exc_info.value.error.code == "bad_request"
        assert "fleet runtime" in exc_info.value.error.message


class TestScenarioPlumbing:
    def test_scenario_of_reads_record_one(self, fleet_log):
        records, _ = fleet_log
        run_kind, scenario = scenario_of(records)
        assert run_kind == "fleet"
        assert scenario == FLEET_SCENARIO

    def test_scenario_of_rejects_a_headless_log(self, fleet_log):
        records, _ = fleet_log
        with pytest.raises(TraceError, match="run_start"):
            scenario_of([records[0]] + records[2:])

    def test_fleet_inputs_applies_defaults(self):
        specs, _, config, _ = fleet_inputs({"deployments": 3})
        assert len(specs) == 3
        assert config.start_hour == FLEET_DEFAULTS["start_hour"]
        assert specs[0][0] == "tenant-1"
        assert specs[0][1].catalog == "spot"

    def test_fleet_inputs_rejects_unknown_predictor(self):
        with pytest.raises(ValueError, match="predictor"):
            fleet_inputs({"predictor": "psychic"})
