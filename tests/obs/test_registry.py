"""Telemetry registry: instruments, snapshot shape, and thread-safety.

The concurrency cases pin the satellite fix for the pool-callback race:
``ServiceMetrics`` (and the registry primitives underneath) are mutated
from solver-pool callback threads while ``snapshot()`` polls from the
main thread, so every record and read path must hold a lock.
"""

import threading

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    LatencySeries,
    MetricsRegistry,
    percentile,
)
from repro.service.metrics import ServiceMetrics


class TestPercentile:
    def test_exact_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)

    def test_gauge_holds_last(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.set(1.25)
        assert gauge.value == 1.25

    def test_series_summary_keys(self):
        series = LatencySeries()
        series.record(0.1)
        summary = series.summary()
        assert set(summary) == {
            "count", "mean_s", "p50_s", "p90_s", "p95_s", "p99_s", "max_s"
        }


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.series("s") is registry.series("s")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs").increment()
        registry.gauge("queue").set(2.0)
        registry.series("solve").record(0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"jobs": 1}
        assert snap["gauges"] == {"queue": 2.0}
        assert snap["series"]["solve"]["count"] == 1

    def test_span_times_block(self):
        registry = MetricsRegistry()
        with registry.span("solve"):
            pass
        assert registry.series("solve").count == 1


class TestConcurrency:
    """The satellite fix: no torn reads under pool-callback contention."""

    def test_registry_parallel_updates_are_lossless(self):
        registry = MetricsRegistry()
        rounds = 500

        def work():
            for _ in range(rounds):
                registry.counter("n").increment()
                registry.series("lat").record(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n").value == 8 * rounds
        assert registry.series("lat").count == 8 * rounds

    def test_service_metrics_snapshot_never_tears(self):
        """cache_hits + cache_misses must always equal completed, even
        while completions are being recorded concurrently."""
        metrics = ServiceMetrics()
        rounds = 300
        stop = threading.Event()
        torn = []

        def record():
            for i in range(rounds):
                metrics.record_completion(
                    "acme", cached=i % 2 == 0, solve_s=0.01, total_s=0.02
                )

        def poll():
            while not stop.is_set():
                snap = metrics.snapshot()
                lookups = snap["cache_hits"] + snap["cache_misses"]
                if lookups != snap["completed"]:
                    torn.append(snap)

        writers = [threading.Thread(target=record) for _ in range(4)]
        reader = threading.Thread(target=poll)
        reader.start()
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join()
        stop.set()
        reader.join()
        assert not torn
        assert metrics.completed == 4 * rounds
        assert metrics.cache_hits + metrics.cache_misses == 4 * rounds

    def test_per_tenant_counts_survive_contention(self):
        metrics = ServiceMetrics()

        def work(tenant):
            for _ in range(200):
                metrics.record_completion(tenant, cached=True, total_s=0.0)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = metrics.snapshot()
        assert all(
            snap["per_tenant_completed"][f"t{i}"] == 200 for i in range(6)
        )
