"""Trace-record schemas: round-trips, strictness, content-addressed ids."""

import pytest

from repro.api.schemas import DeployEventV1, SchemaError
from repro.obs.records import (
    DETERMINISTIC_KINDS,
    RECORD_KINDS,
    LifecycleV1,
    RunStartV1,
    SubstrateEventV1,
    TraceRecordV1,
    decode_payload,
    run_id_for,
)


class TestEnvelope:
    def record(self, **overrides):
        fields = dict(
            run_id="abc123", seq=0, hour=1.5, kind="span",
            payload={"name": "solve", "seconds": 0.1},
        )
        fields.update(overrides)
        return TraceRecordV1(**fields)

    def test_encode_decode_round_trip(self):
        record = self.record()
        assert TraceRecordV1.decode(record.encode()) == record

    def test_encode_is_sorted_keys(self):
        line = self.record().encode()
        assert line.index('"hour"') < line.index('"kind"') < line.index('"seq"')

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="unknown record kind"):
            self.record(kind="mystery")

    def test_unknown_version_rejected(self):
        data = self.record().to_dict()
        data["trace_version"] = 99
        with pytest.raises(SchemaError, match="trace_version"):
            TraceRecordV1.from_dict(data)

    def test_unknown_fields_rejected(self):
        data = self.record().to_dict()
        data["extra"] = 1
        with pytest.raises(SchemaError, match="unknown fields"):
            TraceRecordV1.from_dict(data)

    def test_invalid_json_line_rejected(self):
        with pytest.raises(SchemaError, match="not valid JSON"):
            TraceRecordV1.decode("{nope")


class TestRunId:
    def test_content_addressed(self):
        a = run_id_for({"seed": 1, "deployments": 4})
        b = run_id_for({"deployments": 4, "seed": 1})
        assert a == b and len(a) == 12

    def test_different_scenarios_differ(self):
        assert run_id_for({"seed": 1}) != run_id_for({"seed": 2})


class TestPayloads:
    def test_every_kind_has_a_schema(self):
        for kind in RECORD_KINDS:
            payload = {
                "trace_hello": {"service": "x", "version": "1"},
                "run_start": {"run_kind": "deploy", "scenario": {}},
                "lifecycle": LifecycleV1(tenant="t", phase="started").to_dict(),
                "interval": DeployEventV1(
                    index=0, start_hour=0.0, duration_hours=1.0
                ).to_dict(),
                "replan": DeployEventV1(
                    index=0, start_hour=1.0, duration_hours=0.0,
                    event="replan", trigger="price", reason="spike",
                ).to_dict(),
                "substrate_event": SubstrateEventV1(
                    event_kind="eviction", service="s", hour=2.0
                ).to_dict(),
                "span": {"name": "solve", "seconds": 0.5},
                "snapshot": {"tenant": "t", "step": 1, "state": {},
                             "session_id": 1},
                "run_end": {"summary": {"total_cost": 1.0}},
            }[kind]
            record = TraceRecordV1(
                run_id="r", seq=0, hour=0.0, kind=kind, payload=payload
            )
            decoded = decode_payload(record)
            assert decoded.to_dict() == payload

    def test_lifecycle_rejects_unknown_phase(self):
        with pytest.raises(SchemaError, match="phase"):
            LifecycleV1(tenant="t", phase="paused")

    def test_run_start_rejects_unknown_kind(self):
        with pytest.raises(SchemaError, match="run_kind"):
            RunStartV1(run_kind="batch", scenario={})

    def test_payload_schemas_reject_unknown_fields(self):
        with pytest.raises(SchemaError, match="unknown fields"):
            LifecycleV1.from_dict(
                {"tenant": "t", "phase": "started", "bogus": 1}
            )

    def test_deterministic_kinds_are_record_kinds(self):
        assert DETERMINISTIC_KINDS < set(RECORD_KINDS)
        assert "span" not in DETERMINISTIC_KINDS
        assert "snapshot" not in DETERMINISTIC_KINDS
        assert "trace_hello" not in DETERMINISTIC_KINDS
