"""TraceWriter/RunTracer/read_trace: log invariants and the tracer seams."""

import threading

import pytest

from repro.obs.records import run_id_for
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    RunTracer,
    TraceCollector,
    TraceError,
    TraceWriter,
    read_trace,
)


def traced_run(tmp_path, scenario=None):
    """A tiny hand-driven run logged to both a file and a collector."""
    scenario = scenario if scenario is not None else {"seed": 7}
    path = tmp_path / "run.jsonl"
    collector = TraceCollector()
    with TraceWriter(path) as writer:
        tracer = RunTracer(writer, collector)
        tracer.begin("deploy", scenario, version="1.2.3")
        tracer.lifecycle("acme", "started", hour=0.0)
        tracer.record_span("solve", 0.25)
        tracer.lifecycle("acme", "completed", hour=3.0, cost=1.5)
        tracer.end({"total_cost": 1.5}, hour=3.0)
    return path, collector.records


class TestTracer:
    def test_preamble_then_gapless_sequence(self, tmp_path):
        _, records = traced_run(tmp_path)
        assert [r.kind for r in records] == [
            "trace_hello", "run_start", "lifecycle", "span", "lifecycle",
            "run_end",
        ]
        assert [r.seq for r in records] == list(range(len(records)))

    def test_run_id_is_content_addressed(self, tmp_path):
        scenario = {"seed": 7}
        _, records = traced_run(tmp_path, scenario)
        assert records[0].run_id == run_id_for(scenario)

    def test_begin_twice_rejected(self):
        tracer = RunTracer(TraceCollector())
        tracer.begin("deploy", {})
        with pytest.raises(TraceError, match="twice"):
            tracer.begin("deploy", {})

    def test_record_before_begin_rejected(self):
        tracer = RunTracer(TraceCollector())
        with pytest.raises(TraceError, match="before begin"):
            tracer.lifecycle("acme", "started", hour=0.0)

    def test_tracer_needs_a_sink(self):
        with pytest.raises(ValueError):
            RunTracer()

    def test_span_mirrors_into_registry(self):
        registry = MetricsRegistry()
        tracer = RunTracer(TraceCollector(), registry=registry)
        tracer.begin("deploy", {})
        with tracer.span("solve"):
            pass
        assert registry.series("solve").count == 1

    def test_concurrent_emission_stays_gapless(self):
        collector = TraceCollector()
        tracer = RunTracer(collector)
        tracer.begin("deploy", {})

        def emit():
            for _ in range(200):
                tracer.record_span("solve", 0.0)

        threads = [threading.Thread(target=emit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = [record.seq for record in collector.records]
        assert seqs == list(range(2 + 4 * 200))


class TestReadTrace:
    def test_round_trip(self, tmp_path):
        path, records = traced_run(tmp_path)
        assert read_trace(path) == records

    def test_missing_run_end_is_valid(self, tmp_path):
        """A crashed log (no run_end) must parse — resume consumes it."""
        path, records = traced_run(tmp_path)
        lines = path.read_text().splitlines()
        truncated = tmp_path / "crashed.jsonl"
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        assert [r.kind for r in read_trace(truncated)][-1] != "run_end"

    def test_empty_log_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            read_trace(path)

    def test_must_open_with_hello(self, tmp_path):
        path, _ = traced_run(tmp_path)
        lines = path.read_text().splitlines()
        tampered = tmp_path / "nohello.jsonl"
        tampered.write_text("\n".join(lines[1:]) + "\n")
        with pytest.raises(TraceError, match="trace_hello"):
            read_trace(tampered)

    def test_sequence_gap_rejected(self, tmp_path):
        path, _ = traced_run(tmp_path)
        lines = path.read_text().splitlines()
        tampered = tmp_path / "gap.jsonl"
        tampered.write_text("\n".join(lines[:2] + lines[3:]) + "\n")
        with pytest.raises(TraceError, match="sequence gap"):
            read_trace(tampered)

    def test_mixed_run_ids_rejected(self, tmp_path):
        path, _ = traced_run(tmp_path)
        other = tmp_path / "other"
        other.mkdir()
        other_path, _ = traced_run(other, {"seed": 8})
        mixed = tmp_path / "mixed.jsonl"
        mixed.write_text(path.read_text() + other_path.read_text())
        with pytest.raises(TraceError, match="multiple run ids"):
            read_trace(mixed)

    def test_writer_appends(self, tmp_path):
        path, _ = traced_run(tmp_path)
        before = len(path.read_text().splitlines())
        with TraceWriter(path) as writer:
            assert writer.count == 0
        assert len(path.read_text().splitlines()) == before
