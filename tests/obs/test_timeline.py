"""Inspect mode (timeline + Mermaid) and the trace-summary rollup.

The fixture log is hand-built from the payload schemas so every record
kind appears exactly where the assertions expect it — no need to run a
whole fleet to test the renderers.
"""

import pytest

from repro.api.schemas import DeployEventV1
from repro.obs.records import (
    LifecycleV1,
    RunEndV1,
    RunStartV1,
    SnapshotV1,
    SpanV1,
    SubstrateEventV1,
    TraceHelloV1,
    TraceRecordV1,
)
from repro.obs.summary import summarize_records
from repro.obs.timeline import render_timeline, to_mermaid

SCENARIO = {"deployments": 1, "start_hour": 24.0, "seed": 1}


@pytest.fixture(scope="module")
def records():
    payloads = [
        ("trace_hello", 0.0, TraceHelloV1(version="1.0.0")),
        ("run_start", 0.0, RunStartV1(run_kind="fleet", scenario=SCENARIO)),
        ("lifecycle", 24.0, LifecycleV1(tenant="tenant-1", phase="started")),
        ("interval", 0.0, DeployEventV1(
            index=0, start_hour=0.0, duration_hours=6.0,
            nodes={"ec2.m1.large": 2}, cost=1.2, tenant="tenant-1",
        )),
        ("substrate_event", 28.0, SubstrateEventV1(
            event_kind="eviction", service="spot", hour=28.0,
            description="spot price 0.40 crossed bid 0.34",
        )),
        ("replan", 6.0, DeployEventV1(
            index=0, start_hour=6.0, duration_hours=0.0, tenant="tenant-1",
            event="replan", trigger="eviction", reason="nodes evicted",
        )),
        ("span", 6.0, SpanV1(name="fleet.solve", seconds=0.125)),
        ("snapshot", 30.0, SnapshotV1(tenant="tenant-1", step=1, state={})),
        ("interval", 6.0, DeployEventV1(
            index=0, start_hour=6.0, duration_hours=4.0,
            nodes={"ec2.m1.large": 3}, cost=2.3, tenant="tenant-1",
        )),
        ("lifecycle", 34.0, LifecycleV1(
            tenant="tenant-1", phase="completed",
            cost=3.5, replans=1, completion_hours=10.0,
        )),
        ("run_end", 34.0, RunEndV1(summary={
            "total_cost": 3.5, "completed": 1, "total_replans": 1,
            "mode": "event",
        })),
    ]
    return [
        TraceRecordV1(
            run_id="feedc0ffee12", seq=seq, hour=hour, kind=kind,
            payload=payload.to_dict(),
        )
        for seq, (kind, hour, payload) in enumerate(payloads)
    ]


class TestTimeline:
    def test_header_names_run_and_count(self, records):
        text = render_timeline(records)
        assert text.splitlines()[0] == (
            "trace feedc0ffee12 (fleet): 11 records"
        )

    def test_one_row_per_record_with_hours(self, records):
        lines = render_timeline(records).splitlines()
        assert len(lines) == 1 + len(records)
        assert lines[1].startswith("[    0.0h] trace_hello")
        assert "[   28.0h] substrate_event" in lines[5]
        assert "eviction: spot price 0.40 crossed bid 0.34" in lines[5]

    def test_rows_tell_the_story(self, records):
        text = render_timeline(records)
        assert "tenant-1 interval #0: 2 nodes, $1.200" in text
        assert "tenant-1 re-plan [eviction] nodes evicted" in text
        assert "tenant-1 completed — $3.50, 10.0 h, 1 re-plans" in text
        assert "fleet.solve: 125.0 ms" in text
        assert "run finished (total_cost=3.5, completed=1, total_replans=1)" \
            in text


class TestMermaid:
    def test_gantt_skeleton(self, records):
        chart = to_mermaid(records)
        lines = chart.splitlines()
        assert lines[0] == "gantt"
        assert "    title fleet run feedc0ffee12" in lines
        assert "    dateFormat X" in lines

    def test_tenant_bar_spans_lifecycle(self, records):
        chart = to_mermaid(records)
        assert "    section tenant-1" in chart
        assert "    completed :24, 34" in chart

    def test_replans_land_on_the_absolute_axis(self, records):
        """The re-plan record's hour is job-relative (6.0); the chart
        shifts it by the scenario's start_hour (24.0)."""
        assert "    replan eviction :milestone, 30, 0" in to_mermaid(records)

    def test_substrate_section_quotes_labels(self, records):
        chart = to_mermaid(records)
        assert "    section substrate" in chart
        # The description's colon must not leak into Mermaid syntax.
        assert "spot price 0.40 crossed bid 0.34 :milestone, 28, 0" in chart


class TestSummarize:
    def test_counters_gauges_series(self, records):
        snapshot = summarize_records(records)
        assert snapshot["counters"]["records.interval"] == 2
        assert snapshot["counters"]["records.lifecycle"] == 2
        assert snapshot["counters"]["replans.eviction"] == 1
        assert snapshot["gauges"]["run.total_cost"] == 3.5
        assert snapshot["gauges"]["interval_cost_total"] == pytest.approx(3.5)
        assert snapshot["series"]["fleet.solve"]["count"] == 1
        # run_end's non-numeric summary entries are not gauges.
        assert "run.mode" not in snapshot["gauges"]

    def test_feeds_a_caller_registry(self, records):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        snapshot = summarize_records(records, registry=registry)
        assert registry.counter("records.run_end").value == 1
        assert snapshot == registry.snapshot()
