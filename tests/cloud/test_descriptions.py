"""Tests for the XML service-description format (paper Fig. 3)."""

import pytest

from repro.cloud import (
    DescriptionError,
    hybrid_cloud,
    parse_services,
    public_cloud,
    save_services,
    load_services,
    to_xml,
)

#: The paper's own Fig. 3 example, verbatim structure.
PAPER_S3_XML = """
<resources>
  <resource>
    <property name="name"><string>S3</string></property>
    <property name="cost_get"><double>1.0E-6</double></property>
    <property name="cost_put"><double>1.0E-5</double></property>
    <property name="cost_tstore"><double>2.08333332E-4</double></property>
    <property name="can_compute"><boolean>false</boolean></property>
    <property name="can_store"><boolean>true</boolean></property>
    <property name="storage_capacity"><int>-1</int></property>
  </resource>
</resources>
"""


class TestParsing:
    def test_paper_example_parses(self):
        services = parse_services(PAPER_S3_XML)
        assert len(services) == 1
        s3 = services[0]
        assert s3.name == "S3"
        assert s3.cost_get == pytest.approx(1.0e-6)
        assert s3.cost_put == pytest.approx(1.0e-5)
        assert s3.cost_tstore_gb_hour == pytest.approx(2.08333332e-4)
        assert not s3.can_compute
        assert s3.storage_capacity_gb == -1

    def test_malformed_xml_rejected(self):
        with pytest.raises(DescriptionError):
            parse_services("<resources><resource>")

    def test_wrong_root_rejected(self):
        with pytest.raises(DescriptionError):
            parse_services("<services/>")

    def test_empty_document_rejected(self):
        with pytest.raises(DescriptionError):
            parse_services("<resources/>")

    def test_unknown_property_rejected(self):
        bad = PAPER_S3_XML.replace("cost_get", "cost_mystery")
        with pytest.raises(DescriptionError):
            parse_services(bad)

    def test_missing_name_rejected(self):
        bad = PAPER_S3_XML.replace(
            '<property name="name"><string>S3</string></property>', ""
        )
        with pytest.raises(DescriptionError):
            parse_services(bad)

    def test_wrong_type_tag_rejected(self):
        bad = PAPER_S3_XML.replace(
            "<double>1.0E-6</double>", "<string>1.0E-6</string>"
        )
        with pytest.raises(DescriptionError):
            parse_services(bad)

    def test_bad_boolean_rejected(self):
        bad = PAPER_S3_XML.replace(
            "<boolean>false</boolean>", "<boolean>maybe</boolean>"
        )
        with pytest.raises(DescriptionError):
            parse_services(bad)

    def test_invalid_semantics_rejected(self):
        # A resource that provides nothing fails ServiceDescription checks.
        bad = """
        <resources><resource>
          <property name="name"><string>void</string></property>
        </resource></resources>
        """
        with pytest.raises(DescriptionError):
            parse_services(bad)


class TestRoundTrip:
    @pytest.mark.parametrize("catalog", [public_cloud(), hybrid_cloud()])
    def test_catalogs_round_trip(self, catalog):
        parsed = parse_services(to_xml(catalog))
        assert parsed == list(catalog)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "services.xml"
        save_services(public_cloud(), str(path))
        loaded = load_services(str(path))
        assert loaded == public_cloud()

    def test_defaults_omitted_from_xml(self):
        xml = to_xml(public_cloud())
        # transfer_in defaults to 0 everywhere and should not be emitted.
        assert "cost_transfer_in" not in xml
