"""Tests for spot market mechanics and price traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import (
    SpotMarket,
    SpotTrace,
    aws_like_trace,
    constant_trace,
    electricity_like_trace,
    summarize_costs,
)
from repro.cloud.catalog import EC2_LARGE_PRICE


@pytest.fixture
def trace():
    return SpotTrace(np.array([0.10, 0.20, 0.30, 0.15]))


class TestSpotTrace:
    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            SpotTrace(np.array([]))

    def test_rejects_negative_prices(self):
        with pytest.raises(ValueError):
            SpotTrace(np.array([0.1, -0.1]))

    def test_price_at_hour_boundaries(self, trace):
        assert trace.price_at(0.0) == pytest.approx(0.10)
        assert trace.price_at(0.99) == pytest.approx(0.10)
        assert trace.price_at(1.0) == pytest.approx(0.20)

    def test_price_clamps_past_ends(self, trace):
        assert trace.price_at(-5.0) == pytest.approx(0.10)
        assert trace.price_at(99.0) == pytest.approx(0.15)

    def test_window(self, trace):
        window = trace.window(end_hour=3.0, duration_hours=2.0)
        assert list(window) == pytest.approx([0.20, 0.30])

    def test_window_clips_at_start(self, trace):
        window = trace.window(end_hour=1.0, duration_hours=10.0)
        assert list(window) == pytest.approx([0.10])

    def test_slice_from(self, trace):
        rest = trace.slice_from(2.0)
        assert rest.price_at(2.0) == pytest.approx(0.30)
        assert len(rest) == 2

    def test_csv_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace.save_csv(str(path))
        loaded = SpotTrace.load_csv(str(path))
        assert np.allclose(loaded.prices, trace.prices)

    def test_start_hour_offset(self):
        shifted = SpotTrace(np.array([1.0, 2.0]), start_hour=10.0)
        assert shifted.price_at(10.5) == pytest.approx(1.0)
        assert shifted.price_at(11.5) == pytest.approx(2.0)


class TestSpotMarket:
    def test_charged_market_price_not_bid(self, trace):
        market = SpotMarket(trace)
        record = market.evaluate(hour=0.0, bid=0.50)
        assert record.running
        assert record.charged == pytest.approx(0.10)

    def test_outbid_terminates_and_charges_nothing(self, trace):
        market = SpotMarket(trace)
        record = market.evaluate(hour=2.0, bid=0.25)
        assert not record.running
        assert record.charged == 0.0

    def test_bid_equal_to_price_runs(self, trace):
        record = SpotMarket(trace).evaluate(hour=1.0, bid=0.20)
        assert record.running

    def test_run_fixed_bid(self, trace):
        records = SpotMarket(trace).run_fixed_bid(0.0, 4, bid=0.20)
        assert [r.running for r in records] == [True, True, False, True]
        total = sum(r.charged for r in records)
        assert total == pytest.approx(0.10 + 0.20 + 0.15)


class TestSummaries:
    def test_summary_fields(self):
        summary = summarize_costs([1.0, 2.0, 3.0])
        assert summary["average"] == pytest.approx(2.0)
        assert summary["maximum"] == pytest.approx(3.0)
        assert summary["stddev"] == pytest.approx(np.std([1, 2, 3]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_costs([])


class TestGenerators:
    def test_lengths(self):
        assert len(aws_like_trace(days=7)) == 7 * 24
        assert len(electricity_like_trace(days=7)) == 7 * 24

    def test_deterministic_per_seed(self):
        a = aws_like_trace(days=5, seed=42)
        b = aws_like_trace(days=5, seed=42)
        assert np.array_equal(a.prices, b.prices)
        c = aws_like_trace(days=5, seed=43)
        assert not np.array_equal(a.prices, c.prices)

    def test_aws_trace_hugs_floor(self):
        trace = aws_like_trace(days=30, seed=1)
        median = float(np.median(trace.prices))
        assert 0.12 < median < 0.22  # flat floor near $0.16

    def test_electricity_trace_is_diurnal_aws_is_not(self):
        # The paper's core observation (Fig. 13): electricity prices have
        # a daily pattern usable for prediction; the AWS trace does not.
        el = electricity_like_trace(days=30, seed=1)
        aws = aws_like_trace(days=30, seed=1)

        def lag24_correlation(prices):
            return float(np.corrcoef(prices[:-24], prices[24:])[0, 1])

        assert lag24_correlation(el.prices) > 0.5
        assert abs(lag24_correlation(aws.prices)) < 0.25

    def test_electricity_bounds(self):
        el = electricity_like_trace(days=30, seed=2, low=0.1, high=0.5)
        assert el.prices.min() >= 0.1 - 1e-9
        assert el.prices.max() <= 0.5 + 1e-9

    def test_both_below_reasonable_multiple_of_on_demand(self):
        for trace in (aws_like_trace(days=20, seed=3), electricity_like_trace(days=20, seed=3)):
            assert trace.prices.max() <= 1.5 * EC2_LARGE_PRICE

    def test_constant_trace(self):
        trace = constant_trace(0.34, days=2)
        assert np.all(trace.prices == 0.34)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_generators_never_negative(self, seed):
        assert aws_like_trace(days=3, seed=seed).prices.min() >= 0
        assert electricity_like_trace(days=3, seed=seed).prices.min() >= 0
