"""Tests for the full 2011 EC2 catalog, transfer tiers, reserved offers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import (
    INSTANCE_SPECS,
    RESERVED_M1_LARGE,
    KMEANS_THROUGHPUT_GB_H,
    ReservedOffer,
    TransferTiers,
    ecu_efficiency,
    full_instance_catalog,
    measured_throughput,
    projected_throughput,
    spec_by_name,
    validate_catalog,
    with_tiered_transfer,
)
from repro.cloud.catalog import ec2_m1_large, s3


class TestInstanceCatalog:
    def test_exactly_eleven_types(self):
        # "Amazon offers eleven different types of VM instances" (paper §1).
        assert len(INSTANCE_SPECS) == 11
        assert len(full_instance_catalog()) == 11

    def test_names_unique_and_prefixed(self):
        services = full_instance_catalog()
        names = [s.name for s in services]
        assert len(set(names)) == 11
        assert all(name.startswith("ec2.") for name in names)

    def test_measured_anchors_match_fig1(self):
        assert spec_by_name("m1.large").throughput() == pytest.approx(
            KMEANS_THROUGHPUT_GB_H
        )
        assert spec_by_name("m1.xlarge").throughput() == pytest.approx(0.85)
        assert spec_by_name("c1.xlarge").throughput() == pytest.approx(1.25)

    def test_catalog_validates_with_storage(self):
        validate_catalog(full_instance_catalog() + [s3()])

    def test_ebs_only_micro_cannot_store(self):
        micro = spec_by_name("t1.micro").to_service()
        assert not micro.can_store

    def test_spec_by_name_accepts_both_forms(self):
        assert spec_by_name("m1.large") is spec_by_name("ec2.m1.large")

    def test_unknown_spec_lists_types(self):
        with pytest.raises(KeyError, match="m1.large"):
            spec_by_name("m9.mega")

    def test_m1_large_beats_m1_xlarge_on_cost_performance(self):
        # Section 6.1 offers the planner m1.large and m1.xlarge and notes
        # the extra-large type is "never chosen ... since they offer a
        # cost-performance ratio that is slightly worse".
        def dollars_per_gb_hour(name):
            service = spec_by_name(name).to_service()
            return service.price_per_node_hour / service.throughput_gb_per_hour

        assert dollars_per_gb_hour("m1.large") < dollars_per_gb_hour("m1.xlarge")

    def test_projected_types_marked_by_curve(self):
        # Unmeasured types inherit the Fig. 1 efficiency correction: their
        # throughput is below the linear ECU projection.
        for spec in INSTANCE_SPECS:
            if spec.measured_gb_per_hour is None:
                assert spec.throughput() <= projected_throughput(spec.ecu) + 1e-12


class TestEfficiencyCurve:
    def test_anchor_points(self):
        assert ecu_efficiency(4.0) == pytest.approx(1.0)
        assert ecu_efficiency(8.0) == pytest.approx(0.9659)
        assert ecu_efficiency(20.0) == pytest.approx(0.5682)

    def test_monotone_nonincreasing_beyond_anchor(self):
        values = [ecu_efficiency(e) for e in (4, 6, 8, 12, 16, 20, 30, 40)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_flat_extrapolation(self):
        assert ecu_efficiency(33.5) == pytest.approx(ecu_efficiency(20.0))

    def test_divergence_grows_with_ecu(self):
        # Fig. 1's headline: projected - measured grows with the rating.
        gaps = [
            projected_throughput(e) - measured_throughput(e)
            for e in (4.0, 8.0, 20.0, 33.5)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(gaps, gaps[1:]))

    @given(ecu=st.floats(0.5, 40.0))
    @settings(max_examples=60, deadline=None)
    def test_measured_never_exceeds_projection(self, ecu):
        assert measured_throughput(ecu) <= projected_throughput(ecu) + 1e-12


class TestTransferTiers:
    def test_first_gb_free(self):
        tiers = TransferTiers()
        assert tiers.cost(1.0) == pytest.approx(0.0)

    def test_band_accumulation(self):
        tiers = TransferTiers()
        # 1 GB free + 99 GB at $0.12.
        assert tiers.cost(100.0) == pytest.approx(99.0 * 0.12)

    def test_beyond_last_break(self):
        tiers = TransferTiers()
        base = tiers.cost(153_600.0)
        assert tiers.cost(153_700.0) == pytest.approx(base + 100.0 * 0.05)

    def test_marginal_rates(self):
        tiers = TransferTiers()
        assert tiers.marginal_rate(0.5) == pytest.approx(0.0)
        assert tiers.marginal_rate(5.0) == pytest.approx(0.12)
        assert tiers.marginal_rate(20_000.0) == pytest.approx(0.09)
        assert tiers.marginal_rate(200_000.0) == pytest.approx(0.05)

    def test_effective_rate_below_marginal_cap(self):
        tiers = TransferTiers()
        assert tiers.effective_rate(100.0) < 0.12
        assert tiers.effective_rate(100.0) > 0.10

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            TransferTiers().cost(-1.0)

    def test_malformed_tiers_rejected(self):
        with pytest.raises(ValueError):
            TransferTiers(breaks=(1.0,), rates=(0.0,))
        with pytest.raises(ValueError):
            TransferTiers(breaks=(10.0, 1.0), rates=(0.1, 0.2, 0.3))

    def test_with_tiered_transfer_patches_service(self):
        service = with_tiered_transfer(ec2_m1_large(), 100.0)
        assert service.transfer_out_cost_gb == pytest.approx(
            TransferTiers().effective_rate(100.0)
        )

    @given(gb=st.floats(0.0, 1e6))
    @settings(max_examples=60, deadline=None)
    def test_cost_monotone_and_concave_rates(self, gb):
        tiers = TransferTiers()
        assert tiers.cost(gb + 1.0) >= tiers.cost(gb) - 1e-9
        assert 0.0 <= tiers.effective_rate(gb) <= max(tiers.rates)


class TestReservedOffers:
    def test_amortized_rate_decreases_with_utilization(self):
        low = RESERVED_M1_LARGE.amortized_rate(0.1)
        high = RESERVED_M1_LARGE.amortized_rate(1.0)
        assert high < low
        assert high == pytest.approx(0.12 + 910.0 / (365 * 24))

    def test_break_even_against_on_demand(self):
        util = RESERVED_M1_LARGE.break_even_utilization(0.34)
        # 910 / (0.34 - 0.12) ≈ 4136 h ≈ 47% of a year.
        assert util == pytest.approx(910.0 / 0.22 / (365 * 24))
        assert 0.4 < util < 0.55

    def test_never_pays_off_when_hourly_too_high(self):
        offer = ReservedOffer("m1.large", upfront_usd=10.0, hourly_usd=0.5)
        assert math.isinf(offer.break_even_utilization(0.34))

    def test_to_service_uses_amortized_price(self):
        service = RESERVED_M1_LARGE.to_service(utilization=0.5)
        assert service.name == "ec2.m1.large.reserved"
        assert service.price_per_node_hour == pytest.approx(
            RESERVED_M1_LARGE.amortized_rate(0.5)
        )

    def test_utilization_bounds(self):
        with pytest.raises(ValueError):
            RESERVED_M1_LARGE.amortized_rate(0.0)
        with pytest.raises(ValueError):
            RESERVED_M1_LARGE.amortized_rate(1.5)

    def test_offer_validation(self):
        with pytest.raises(ValueError):
            ReservedOffer("m1.large", upfront_usd=-1.0, hourly_usd=0.1)

    def test_planner_prefers_reserved_at_full_utilization(self):
        # At 100% utilization the reserved price undercuts on-demand, so
        # a plan over both services must pick the reserved one.
        from repro.core import Goal, NetworkConditions, PlannerJob, plan_job

        reserved = RESERVED_M1_LARGE.to_service(utilization=1.0)
        plan = plan_job(
            PlannerJob(input_gb=4.0),
            [ec2_m1_large(), reserved, s3()],
            Goal.min_cost(deadline_hours=6.0),
            network=NetworkConditions.from_mbit_s(16.0),
        )
        assert plan.total_node_hours("ec2.m1.large.reserved") > 0
        assert plan.total_node_hours("ec2.m1.large") == 0
