"""Catalog memoization: repeated lookups are cached, returned lists are
fresh, and the shared descriptions stay pristine."""

from repro.cloud import (
    ec2_m1_large,
    full_instance_catalog,
    hybrid_cloud,
    local_cluster,
    public_cloud,
    s3,
)


class TestMemoization:
    def test_constructors_are_cached(self):
        assert ec2_m1_large() is ec2_m1_large()
        assert s3() is s3()
        assert local_cluster(5) is local_cluster(5)

    def test_distinct_arguments_distinct_objects(self):
        assert ec2_m1_large(0.44) is not ec2_m1_large(6.2)
        assert local_cluster(5) is not local_cluster(10)

    def test_catalog_lists_are_fresh(self):
        first = public_cloud()
        second = public_cloud()
        assert first is not second
        first.append("sentinel")
        assert "sentinel" not in public_cloud()

    def test_catalog_contents_are_shared(self):
        assert public_cloud()[0] is public_cloud()[0]
        assert full_instance_catalog()[0] is full_instance_catalog()[0]

    def test_hybrid_extends_public(self):
        hybrid = hybrid_cloud(local_nodes=4)
        assert [s.name for s in hybrid[:-1]] == [s.name for s in public_cloud()]
        assert hybrid[-1].max_nodes == 4

    def test_replace_still_copies(self):
        cached = ec2_m1_large()
        tweaked = cached.replace(price_per_node_hour=0.99)
        assert tweaked is not cached
        assert cached.price_per_node_hour == 0.34

    def test_full_catalog_unchanged(self):
        catalog = full_instance_catalog()
        assert len(catalog) == 11
        assert {s.provider for s in catalog} == {"aws"}
