"""Unit tests for service descriptions and derived pricing quantities."""

import math

import pytest

from repro.cloud import UNLIMITED, ResourceKind, ServiceDescription, validate_catalog
from repro.cloud.catalog import ec2_m1_large, local_cluster, s3


class TestValidation:
    def test_service_must_provide_something(self):
        with pytest.raises(ValueError):
            ServiceDescription(name="nothing")

    def test_compute_needs_throughput(self):
        with pytest.raises(ValueError):
            ServiceDescription(name="c", can_compute=True)

    def test_billing_hours_positive(self):
        with pytest.raises(ValueError):
            ServiceDescription(name="s", can_store=True, billing_hours=0)

    def test_avg_op_positive(self):
        with pytest.raises(ValueError):
            ServiceDescription(name="s", can_store=True, avg_op_mb=0)


class TestKinds:
    def test_pure_storage(self):
        assert s3().kinds == {ResourceKind.STORAGE}

    def test_overlapping_resources(self):
        # EC2 bundles compute and storage (paper Section 4.6).
        assert ec2_m1_large().kinds == {ResourceKind.COMPUTE, ResourceKind.STORAGE}


class TestRequestCostTranslation:
    def test_put_cost_per_gb(self):
        # Paper Fig. 3: cost_put 1e-5/op; 64 MB ops -> 16 ops/GB.
        service = s3()
        assert service.put_cost_per_gb() == pytest.approx(16 * 1e-5)

    def test_get_cost_per_gb(self):
        service = s3()
        assert service.get_cost_per_gb() == pytest.approx(16 * 1e-6)

    def test_smaller_ops_cost_more_per_gb(self):
        coarse = s3()
        fine = s3().replace(avg_op_mb=1.0)
        assert fine.put_cost_per_gb() > coarse.put_cost_per_gb()


class TestBillingRounding:
    def test_round_up_to_full_hours(self):
        ec2 = ec2_m1_large()
        assert ec2.node_hours_billed(0.1) == pytest.approx(1.0)
        assert ec2.node_hours_billed(1.0) == pytest.approx(1.0)
        assert ec2.node_hours_billed(1.01) == pytest.approx(2.0)

    def test_zero_usage_not_billed(self):
        assert ec2_m1_large().node_hours_billed(0.0) == 0.0

    def test_epsilon_above_boundary_tolerated(self):
        # Floating-point noise at the boundary must not add an hour.
        assert ec2_m1_large().node_hours_billed(2.0 + 1e-12) == pytest.approx(2.0)

    def test_custom_granularity(self):
        svc = s3().replace(billing_hours=0.5)
        assert svc.node_hours_billed(0.6) == pytest.approx(1.0)


class TestStorageLimit:
    def test_unlimited(self):
        assert s3().storage_limit_gb() == math.inf

    def test_scales_with_nodes(self):
        ec2 = ec2_m1_large()
        assert ec2.storage_limit_gb(0) == 0.0
        assert ec2.storage_limit_gb(2) == pytest.approx(1700.0)

    def test_local_cluster_bounded(self):
        local = local_cluster(nodes=5, disk_gb_per_node=250)
        assert local.max_nodes == 5
        assert local.storage_limit_gb(5) == pytest.approx(1250.0)


class TestCatalogValidation:
    def test_valid_catalog(self):
        validate_catalog([ec2_m1_large(), s3()])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            validate_catalog([s3(), s3()])

    def test_no_compute_rejected(self):
        with pytest.raises(ValueError):
            validate_catalog([s3()])

    def test_no_storage_rejected(self):
        compute_only = ec2_m1_large().replace(can_store=False, storage_gb_per_node=0)
        with pytest.raises(ValueError):
            validate_catalog([compute_only])


class TestReplace:
    def test_replace_returns_modified_copy(self):
        base = ec2_m1_large()
        spot = base.replace(is_spot=True, name="spot")
        assert spot.is_spot and not base.is_spot
        assert base.name == "ec2.m1.large"
