"""Tests for the MapReduce engine, schedulers, cluster and HDFS."""

import pytest

from repro.cloud import ec2_m1_large, local_cluster
from repro.mapreduce import (
    CLIENT_SITE,
    Cluster,
    HadoopScheduler,
    LocationAwareScheduler,
    MapReduceEngine,
    MapReduceJob,
    TaskState,
    build_hdfs,
    build_topology,
    wire_node,
)
from repro.sim import FluidNetwork, Simulation
from repro.storage import (
    ConductorFileSystem,
    LocalDiskBackend,
    LocationRecord,
    Namenode,
    ObjectStoreBackend,
    StorageClient,
)


def make_world(uplink_mb_s=2.0):
    sim = Simulation()
    topo = build_topology(uplink_mb_s=uplink_mb_s)
    network = FluidNetwork(sim, topo)
    cluster = Cluster(sim, boot_seconds=0.0)
    disk = LocalDiskBackend("local-disk")
    s3 = ObjectStoreBackend("s3", per_chunk_overhead_s=0.0)
    namenode = Namenode()
    client = StorageClient(sim, network, namenode, {"local-disk": disk, "s3": s3})
    fs = ConductorFileSystem(namenode, client, chunk_mb=64.0)
    cluster.on_node_up(lambda node: disk.add_node(node.site))

    def add_nodes(count, service=None):
        nodes = cluster.allocate(service or ec2_m1_large(), count)
        for node in nodes:
            wire_node(topo, node.site)
            disk.add_node(node.site)
        return nodes

    return sim, cluster, namenode, disk, s3, client, fs, add_nodes


def small_job(input_mb=512.0, **kwargs):
    kwargs.setdefault("setup_seconds", 0.0)
    return MapReduceJob(
        name="job", input_path="/in", input_mb=input_mb, split_mb=64.0, **kwargs
    )


class TestJobGeometry:
    def test_task_counts(self):
        job = small_job(input_mb=200.0)
        assert job.num_map_tasks == 4
        chunks = [None] * 4  # placeholder ids
        from repro.storage.blocks import BlockId

        tasks = job.make_map_tasks([BlockId("/in", i) for i in range(4)])
        assert [t.input_mb for t in tasks] == pytest.approx([64, 64, 64, 8])

    def test_reduce_tasks_split_output(self):
        job = small_job(map_output_ratio=0.1, num_reducers=4)
        tasks = job.make_reduce_tasks()
        assert len(tasks) == 4
        assert sum(t.input_mb for t in tasks) == pytest.approx(job.map_output_mb)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            MapReduceJob(name="x", input_path="/", input_mb=0)


class TestEngineExecution:
    def run_job(self, nodes=4, input_mb=512.0, straggle=1.0, **job_kwargs):
        sim, cluster, namenode, disk, s3, client, fs, add_nodes = make_world()
        job = small_job(input_mb=input_mb, **job_kwargs)
        inode = fs.create("/in", input_mb)
        node_objs = add_nodes(nodes)
        sim.run_until_idle()
        # Pre-place chunks locally, round-robin.
        for i, block_id in enumerate(inode.chunks):
            site = node_objs[i % nodes].site
            disk.put(site, namenode.block(block_id))
            namenode.add_location(block_id, LocationRecord("local-disk", site))
        scheduler = HadoopScheduler(namenode)
        engine = MapReduceEngine(
            sim, cluster, client, scheduler, job, straggler_spread=straggle
        )
        engine.start(inode.chunks)
        sim.run_until_idle()
        return engine, sim

    def test_completes_all_tasks(self):
        engine, _sim = self.run_job()
        assert engine.is_complete
        result = engine.result()
        assert result.completed
        assert all(t.state is TaskState.COMPLETED for t in result.tasks)

    def test_local_compute_time_matches_slot_rate(self):
        # 8 tasks on 4 nodes x 2 slots: one wave of 64 MB at 0.22 GB/h
        # per slot = 1022 s (all input is node-local).
        engine, sim = self.run_job(nodes=4, input_mb=512.0)
        assert engine.completion_s == pytest.approx(1023, rel=0.05)

    def test_task_series_monotone(self):
        engine, _sim = self.run_job()
        counts = [c for _t, c in engine.task_series]
        assert counts == sorted(counts)
        assert counts[-1] == len(engine.map_tasks) + len(engine.reduce_tasks)

    def test_map_only_job(self):
        engine, _sim = self.run_job(map_output_ratio=0.0)
        assert engine.is_complete
        assert engine.reduce_tasks == []

    def test_reduce_runs_after_all_maps(self):
        engine, _sim = self.run_job(map_output_ratio=0.1, num_reducers=2)
        first_reduce_start = min(t.started_at for t in engine.reduce_tasks)
        last_map_end = max(t.completed_at for t in engine.map_tasks)
        assert first_reduce_start >= last_map_end - 1e-9

    def test_stragglers_slow_completion(self):
        fast, _ = self.run_job(straggle=1.0)
        slow, _ = self.run_job(straggle=1.5)
        assert slow.completion_s > fast.completion_s

    def test_result_chunks_registered(self):
        engine, _sim = self.run_job(map_output_ratio=0.1, num_reducers=2)
        assert len(engine.result_chunks) == 2


class TestSchedulers:
    def test_hadoop_prefers_local(self):
        sim, cluster, namenode, disk, s3, client, fs, add_nodes = make_world()
        inode = fs.create("/in", 128.0)
        nodes = add_nodes(2)
        sim.run_until_idle()
        disk.put(nodes[0].site, namenode.block(inode.chunks[0]))
        namenode.add_location(inode.chunks[0], LocationRecord("local-disk", nodes[0].site))
        disk.put(nodes[1].site, namenode.block(inode.chunks[1]))
        namenode.add_location(inode.chunks[1], LocationRecord("local-disk", nodes[1].site))
        scheduler = HadoopScheduler(namenode)
        job = small_job(input_mb=128.0)
        scheduler.add_tasks(job.make_map_tasks(inode.chunks))
        scheduler.refresh()
        picked = scheduler.next_task(nodes[1])
        assert picked is not None and picked.block == inode.chunks[1]

    def test_location_aware_gates_on_plan(self):
        sim, cluster, namenode, disk, s3, client, fs, add_nodes = make_world()
        inode = fs.create("/in", 64.0)
        nodes = add_nodes(1)
        sim.run_until_idle()
        s3.put("", namenode.block(inode.chunks[0]))
        namenode.add_location(inode.chunks[0], LocationRecord("s3"))
        scheduler = LocationAwareScheduler(namenode)
        job = small_job(input_mb=64.0)
        scheduler.add_tasks(job.make_map_tasks(inode.chunks))
        scheduler.refresh()
        # Data is on S3 but the plan has not opened (ec2, s3): not runnable.
        assert scheduler.next_task(nodes[0]) is None
        scheduler.allow(nodes[0].service.name, "s3")
        assert scheduler.next_task(nodes[0]) is not None


class TestCluster:
    def test_boot_delay(self):
        sim = Simulation()
        cluster = Cluster(sim, boot_seconds=90.0)
        nodes = cluster.allocate(ec2_m1_large(), 2)
        assert not nodes[0].is_up
        sim.run_until_idle()
        assert all(n.is_up for n in nodes)
        assert sim.now == pytest.approx(90.0)

    def test_local_nodes_boot_instantly(self):
        sim = Simulation()
        cluster = Cluster(sim, boot_seconds=90.0)
        cluster.allocate(local_cluster(5), 1)
        sim.run_until_idle()
        assert sim.now == pytest.approx(0.0)

    def test_release_bills_rounded_hours(self):
        sim = Simulation()
        cluster = Cluster(sim, boot_seconds=0.0)
        node = cluster.allocate(ec2_m1_large(), 1)[0]
        sim.run_until_idle()
        sim.schedule(1.5 * 3600, lambda: cluster.release(node))
        sim.run_until_idle()
        entry = next(iter(cluster.ledger))
        assert entry.quantity == pytest.approx(2.0)  # 1.5 h -> 2 billed
        assert entry.amount == pytest.approx(0.68)

    def test_double_release_bills_once(self):
        sim = Simulation()
        cluster = Cluster(sim, boot_seconds=0.0)
        node = cluster.allocate(ec2_m1_large(), 1)[0]
        sim.schedule(3600.0, lambda: None)  # advance the clock one hour
        sim.run_until_idle()
        cluster.release(node)
        cluster.release(node)
        assert len(cluster.ledger) == 1


class TestHdfs:
    def test_pipeline_write_replicates(self):
        sim = Simulation()
        topo = build_topology()
        for i in range(3):
            wire_node(topo, f"dn{i}")
        network = FluidNetwork(sim, topo)
        hdfs = build_hdfs(sim, network, [f"dn{i}" for i in range(3)], replication=3)
        done = []
        hdfs.write_file("/f", 128.0, CLIENT_SITE, on_complete=lambda: done.append(1))
        sim.run_until_idle()
        assert done
        for block_id in hdfs.fs.inode("/f").chunks:
            assert hdfs.namenode.replication_of(block_id) == 3

    def test_no_datanodes_rejected(self):
        sim = Simulation()
        topo = build_topology()
        network = FluidNetwork(sim, topo)
        hdfs = build_hdfs(sim, network, [], replication=3)
        from repro.storage.blocks import Block, BlockId

        with pytest.raises(RuntimeError):
            hdfs.pipeline_write(Block(BlockId("/x", 0), 64.0), CLIENT_SITE)
