"""The conformance suite, instantiated once per execution backend.

``conformance.ExecutorConformance`` holds the shared contract; the
classes here only pick the backend.  Adding a backend to
:data:`repro.exec.BACKENDS` without adding a class below fails the
coverage test at the bottom.
"""

from conformance import ExecutorConformance

from repro.exec import BACKENDS, make_executor


class TestSimConformance(ExecutorConformance):
    backend = "sim"


class TestPoolConformance(ExecutorConformance):
    backend = "pool"


class TestStubConformance(ExecutorConformance):
    backend = "stub"


def test_every_backend_has_a_conformance_class():
    covered = {
        cls.backend
        for cls in ExecutorConformance.__subclasses__()
    }
    assert covered == set(BACKENDS)


def test_unknown_backend_is_rejected_with_the_menu():
    import pytest

    with pytest.raises(ValueError, match="sim"):
        make_executor("warehouse", None, None)
