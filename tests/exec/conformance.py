"""Cross-backend executor conformance checks.

One behavioural contract, three substrates: every test on
:class:`ExecutorConformance` runs identically against each entry in
:data:`repro.exec.BACKENDS` — ``tests/exec/test_conformance.py``
instantiates one subclass per backend.  The suite pins the paper's
deployment invariants at the protocol seam:

- **plan-only execution** — no outcome ever exceeds its interval's
  planned work, whatever actually ran underneath;
- **shortfall reporting** — a slower-than-believed world surfaces as
  ``map_shortfall`` and is absorbed by re-planning, never papered over;
- **outbid/failure surfacing** — spot losses and worker failures appear
  on the outcome (and only there), and outbid hours are never charged;
- **ledger accounting** — every cost in the result is a ledger entry,
  on every backend.

A backend that passes this suite can sit under the controller without
the controller knowing or caring which substrate it got.
"""

import numpy as np
import pytest

from repro.cloud import SpotTrace, public_cloud
from repro.core import (
    CurrentPricePredictor,
    Goal,
    NetworkConditions,
    PlannerJob,
)
from repro.core.conditions import ActualConditions
from repro.core.controller import JobController
from repro.core.spot_sim import spot_services
from repro.exec import Executor, make_executor

NET = NetworkConditions.from_mbit_s(16.0)

#: Backend knobs sized so even the subprocess backend runs in seconds.
SMALL_OPTIONS = {"task_gb": 1.0, "payload_bytes": 1024}


class ExecutorConformance:
    """Subclass with ``backend = "<name>"``; every test runs per backend."""

    backend = "sim"

    # -- scenario builders -------------------------------------------------

    def options(self):
        return None if self.backend == "sim" else dict(SMALL_OPTIONS)

    def controller(
        self,
        *,
        input_gb=4.0,
        deadline=3.0,
        services=None,
        **kwargs,
    ) -> JobController:
        return JobController(
            PlannerJob(name="conform", input_gb=input_gb),
            services if services is not None else public_cloud(),
            Goal.min_cost(deadline_hours=deadline),
            network=NET,
            backend=self.backend,
            backend_options=self.options(),
            **kwargs,
        )

    def run(self, *, actual=None, **kwargs):
        return self.controller(**kwargs).run(
            actual or ActualConditions.as_predicted()
        )

    # -- the protocol seam -------------------------------------------------

    def test_make_executor_builds_a_protocol_instance(self):
        controller = self.controller()
        from repro.core.problem import SystemState

        executor = make_executor(
            self.backend,
            controller._problem(SystemState.initial(controller.job)),
            ActualConditions.as_predicted(),
            options=self.options(),
        )
        try:
            assert isinstance(executor, Executor)
            assert executor.name == self.backend
            assert executor.bids == {}
        finally:
            executor.close()
            executor.close()  # close is idempotent

    # -- nominal completion + ledger accounting ----------------------------

    def test_completes_within_deadline(self):
        result = self.run()
        assert result.completed
        assert result.deadline_met
        assert result.replans == 0

    def test_ledger_accounts_every_dollar(self):
        result = self.run()
        assert result.total_cost > 0
        assert result.ledger.total() == pytest.approx(result.total_cost)
        assert result.total_cost == pytest.approx(
            result.plans[0].predicted_cost, rel=0.02
        )

    def test_final_state_accounts_every_byte(self):
        result = self.run()
        state = result.final_state
        assert state.map_done_gb == pytest.approx(4.0, abs=1e-4)
        assert state.source_remaining_gb == pytest.approx(0.0, abs=1e-4)

    # -- plan-only execution -----------------------------------------------

    def test_executes_only_planned_work(self):
        result = self.run()
        for outcome in result.outcomes:
            assert outcome.map_gb <= outcome.planned_map_gb + 1e-6
            assert outcome.uploaded_gb <= outcome.planned_upload_gb + 1e-6

    def test_matches_sim_fluid_accounting(self):
        """All backends share the fluid bookkeeping, so a nominal run's
        numbers are identical to the simulator's — the substrate changes
        *how* work runs, never what the controller believes happened."""
        result = self.run()
        reference = ExecutorConformance().run()
        assert result.completion_hours == reference.completion_hours
        assert result.total_cost == pytest.approx(reference.total_cost)
        assert [
            (o.index, o.map_gb, o.reduce_gb, o.cost) for o in result.outcomes
        ] == pytest.approx([
            (o.index, o.map_gb, o.reduce_gb, o.cost)
            for o in reference.outcomes
        ])

    # -- shortfall reporting + adaptation ----------------------------------

    def test_slow_world_surfaces_shortfall_and_replans(self):
        actual = ActualConditions(
            throughput_gb_per_hour={
                "ec2.m1.large": 0.22, "ec2.m1.xlarge": 0.42,
            }
        )
        result = self.run(deadline=4.0, actual=actual)
        assert result.completed
        assert result.replans >= 1
        assert any(o.map_shortfall > 0.01 for o in result.outcomes)

    # -- outbid / failure surfacing ----------------------------------------

    def test_outbid_services_surface_and_are_never_charged(self):
        prices = np.full(72, 0.16)
        prices[2:5] = 10.0  # spike above any sane bid in hours 2-4
        trace = SpotTrace(prices)
        result = self.controller(
            input_gb=8.0,
            deadline=12.0,
            services=spot_services(),
            predictor=CurrentPricePredictor(),
            trace=trace,
        ).run(ActualConditions(spot_traces={"ec2.m1.large.spot": trace}))
        assert result.completed
        assert any(o.outbid_services for o in result.outcomes)
        assert all(entry.unit_price < 1.0 for entry in result.ledger)

    def test_nominal_run_reports_no_failures(self):
        result = self.run()
        for outcome in result.outcomes:
            assert outcome.failed_services == []
            assert outcome.spot_data_lost_gb == 0.0
