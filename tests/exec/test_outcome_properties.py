"""Property-style randomized tests for :class:`IntervalOutcome` edges.

The outcome record is the one object every backend, the trigger policy
and the wire schema all agree on, so its invariants are checked over
randomized inputs rather than a handful of examples: ``map_shortfall``
stays in [0, 1] for *any* non-negative progress/plan pair (including
the zero-plan and zero-duration degenerate intervals), and the loss
accounting (``spot_data_lost_gb``, ``failed_services``) survives the
wire round-trip bit-for-bit.
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.api.schemas import DeployEventV1
from repro.core.executor import IntervalOutcome

gb = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
tiny = st.floats(
    min_value=0.0, max_value=1e-9, allow_nan=False, allow_infinity=False
)


def outcome(
    map_gb=0.0,
    planned_map_gb=0.0,
    duration_hours=1.0,
    spot_data_lost_gb=0.0,
    failed_services=(),
):
    return IntervalOutcome(
        index=1,
        start_hour=0.0,
        duration_hours=duration_hours,
        nodes={"ec2.m1.large": 2},
        uploaded_gb=0.0,
        map_gb=map_gb,
        reduce_gb=0.0,
        downloaded_gb=0.0,
        planned_map_gb=planned_map_gb,
        planned_upload_gb=0.0,
        cost=0.25,
        spot_data_lost_gb=spot_data_lost_gb,
        failed_services=list(failed_services),
    )


class TestMapShortfallBounds:
    @given(map_gb=gb, planned=gb)
    def test_always_within_unit_interval(self, map_gb, planned):
        shortfall = outcome(map_gb=map_gb, planned_map_gb=planned).map_shortfall
        assert 0.0 <= shortfall <= 1.0

    @given(planned=tiny, map_gb=gb)
    def test_zero_plan_means_zero_shortfall(self, planned, map_gb):
        """No planned map work -> nothing to fall short of, even if some
        progress number is present (carry-over rounding)."""
        assert outcome(map_gb=map_gb, planned_map_gb=planned).map_shortfall == 0.0

    @given(planned=st.floats(min_value=1e-6, max_value=1e9,
                             allow_nan=False, allow_infinity=False))
    def test_no_progress_is_total_shortfall(self, planned):
        assert outcome(map_gb=0.0, planned_map_gb=planned).map_shortfall == 1.0

    @given(overachieved=gb, planned=st.floats(min_value=1e-6, max_value=1e9,
                                              allow_nan=False,
                                              allow_infinity=False))
    def test_progress_beyond_plan_clamps_to_zero(self, overachieved, planned):
        shortfall = outcome(
            map_gb=planned + overachieved, planned_map_gb=planned
        ).map_shortfall
        assert shortfall == 0.0

    @given(map_gb=gb, planned=gb)
    def test_zero_duration_interval_is_well_defined(self, map_gb, planned):
        """A zero-length interval (plan boundary degenerate case) still
        yields a bounded shortfall and serializes cleanly."""
        degenerate = outcome(
            map_gb=map_gb, planned_map_gb=planned, duration_hours=0.0
        )
        assert 0.0 <= degenerate.map_shortfall <= 1.0
        wire = DeployEventV1.from_outcome(degenerate).to_dict()
        assert wire["duration_hours"] == 0.0


class TestLossAccountingRoundTrips:
    @given(lost=gb, failed=st.lists(
        st.sampled_from(["ec2.m1.large", "ec2.m1.xlarge", "s3"]),
        unique=True,
    ))
    def test_wire_round_trip_is_exact(self, lost, failed):
        event = DeployEventV1.from_outcome(
            outcome(spot_data_lost_gb=lost, failed_services=sorted(failed))
        )
        decoded = DeployEventV1.from_dict(
            json.loads(json.dumps(event.to_dict()))
        )
        assert decoded == event
        assert decoded.spot_data_lost_gb == lost  # bit-for-bit, not approx
        assert decoded.failed_services == tuple(sorted(failed))

    @given(lost=gb)
    def test_empty_failure_list_stays_off_the_wire(self, lost):
        """The additive field is omitted at its default, which is what
        keeps sim-backend interval payloads byte-identical to logs
        recorded before backends existed."""
        payload = DeployEventV1.from_outcome(
            outcome(spot_data_lost_gb=lost)
        ).to_dict()
        assert "failed_services" not in payload
