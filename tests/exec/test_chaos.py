"""Chaos suite: kill real workers mid-interval, watch the loop absorb it.

Every test here carries the ``chaos`` marker (run with ``-m chaos``;
excluded by nothing — they are part of the default run too, sized to
finish in seconds).  The injection is real: a ``chaos_kill_task`` spec
makes the worker process SIGKILL itself, which breaks the process pool
(or the stub's subprocess) exactly the way an OOM-killed node would.

The asserted chain is the paper's monitor loop end-to-end: the kill
becomes a ``failed_services`` entry and a 100% shortfall on that
interval's outcome, the failure trigger fires, a *budgeted* re-plan
lands, and the run still completes — with the loss visible in the
durable trace log, not just in the in-memory result.

Trace logs are written under ``$CHAOS_LOG_DIR`` when set (the CI chaos
job sets it and uploads the directory as an artifact), else the test's
tmp dir.
"""

import os
from pathlib import Path

import pytest

from repro.api import GoalSpec, JobSpec, Orchestrator
from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, PlannerJob
from repro.core.conditions import ActualConditions
from repro.core.controller import ControllerConfig, JobController
from repro.obs.replay import verify
from repro.obs.trace import RunTracer, TraceError, TraceWriter, read_trace

pytestmark = pytest.mark.chaos

NET = NetworkConditions.from_mbit_s(16.0)

#: Kill the second task the run ever creates — always mid-map-phase for
#: a multi-GB job, whatever the solved plan's interval shapes are.
KILL_SECOND_TASK = {
    "task_gb": 1.0,
    "payload_bytes": 1024,
    "chaos_kill_task": 1,
}


def chaos_log_path(tmp_path: Path, name: str) -> Path:
    root = os.environ.get("CHAOS_LOG_DIR")
    if root:
        directory = Path(root)
        directory.mkdir(parents=True, exist_ok=True)
        return directory / name
    return tmp_path / name


def run_with_kill(backend: str, **options):
    controller = JobController(
        PlannerJob(name="chaos", input_gb=4.0),
        public_cloud(),
        Goal.min_cost(deadline_hours=4.0),
        network=NET,
        backend=backend,
        backend_options={**KILL_SECOND_TASK, **options},
    )
    return controller.run(ActualConditions.as_predicted())


class TestPoolWorkerKill:
    def test_kill_fires_failure_trigger_and_run_completes(self):
        result = run_with_kill("pool")
        assert result.completed
        # The broken pool surfaced as a worker failure, not silence.
        lossy = [o for o in result.outcomes if o.failed_services]
        assert lossy
        assert lossy[0].map_shortfall > 0.5  # the batch really died
        # The failure trigger (not deviation/price) claimed the re-plan.
        assert any(
            record.kind == "failure"
            and "worker failure" in record.reason
            for record in result.replan_records
        )

    def test_replan_is_budgeted(self):
        result = run_with_kill("pool")
        assert 1 <= result.replans <= ControllerConfig().max_replans

    def test_pool_recovers_after_the_kill(self):
        """The kill fires exactly once (retried work gets new task ids),
        so every interval after the lossy one executes cleanly."""
        result = run_with_kill("pool")
        # Positions in the executed sequence — ``outcome.index`` restarts
        # at 1 with each adopted plan, so it cannot order across re-plans.
        lossy = [
            position for position, outcome in enumerate(result.outcomes)
            if outcome.failed_services
        ]
        assert len(lossy) == 1
        after = result.outcomes[lossy[0] + 1:]
        assert after  # the run went on
        assert all(not o.failed_services for o in after)

    def test_loss_is_visible_in_the_trace_log(self, tmp_path):
        log = chaos_log_path(tmp_path, "pool_worker_kill.jsonl")
        writer = TraceWriter(log)
        try:
            result = Orchestrator().deploy(
                JobSpec(
                    name="chaos-wc",
                    input_gb=4.0,
                    goal=GoalSpec(deadline_hours=4.0),
                ),
                tracer=RunTracer(writer),
                backend="pool",
                backend_options=dict(KILL_SECOND_TASK),
            )
        finally:
            writer.close()
        assert result.completed
        records = read_trace(log)
        assert records[-1].kind == "run_end"
        lossy = [
            r for r in records
            if r.kind == "interval" and r.payload.get("failed_services")
        ]
        assert lossy, "the worker loss never reached the trace log"
        assert any(
            r.kind == "replan" and r.payload.get("trigger") == "failure"
            for r in records
        )
        completed = [
            r for r in records
            if r.kind == "lifecycle"
            and r.payload.get("phase") == "completed"
        ]
        assert completed
        # The log knows which substrate ran the job...
        started = [
            r for r in records
            if r.kind == "lifecycle" and r.payload.get("phase") == "started"
        ]
        assert started[0].payload.get("backend") == "pool"
        # ...and replay refuses to byte-verify a nondeterministic one.
        with pytest.raises(TraceError, match="pool"):
            verify(records)


class TestStubWorkerKill:
    def test_kill_fails_the_whole_batch_and_run_completes(self):
        """The container contract: a SIGKILL takes the subprocess down,
        non-zero exit fails the batch, and the loop absorbs it the same
        way it absorbs a broken pool."""
        result = run_with_kill("stub")
        assert result.completed
        assert any(o.failed_services for o in result.outcomes)
        assert any(
            record.kind == "failure" for record in result.replan_records
        )
