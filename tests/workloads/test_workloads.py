"""Tests for the workload generators and instance micro-benchmark."""

import numpy as np
import pytest

from repro.workloads import (
    CALIBRATION_GB_PER_HOUR,
    CALIBRATION_REFERENCES,
    FAST_REFERENCES,
    KMeansDataset,
    SortWorkload,
    WordCountWorkload,
    assign_points,
    generate_points,
    generate_references,
    recompute_centroids,
    run_instance_benchmark,
)


class TestKMeansDataset:
    def test_paper_dataset_geometry(self):
        dataset = KMeansDataset.paper_dataset()
        assert dataset.num_points == 40_000_000
        assert dataset.size_gb == pytest.approx(32.0, rel=0.01)
        assert dataset.num_references == 10_000

    def test_for_size_round_trips(self):
        dataset = KMeansDataset.for_size_gb(64.0)
        assert dataset.size_gb == pytest.approx(64.0, rel=0.01)

    def test_calibrated_throughput(self):
        dataset = KMeansDataset.paper_dataset()
        assert dataset.throughput_gb_per_hour() == pytest.approx(0.44)

    def test_small_reference_set_is_faster(self):
        # The paper's Section 6.2 variant: fewer references -> 6.2 GB/h.
        fast = KMeansDataset.for_size_gb(32.0, num_references=FAST_REFERENCES)
        assert fast.throughput_gb_per_hour() == pytest.approx(6.2, rel=0.01)

    def test_planner_job_derivation(self):
        job = KMeansDataset.paper_dataset().planner_job()
        assert job.input_gb == pytest.approx(32.0, rel=0.01)
        assert 0 < job.map_output_ratio <= 0.01

    def test_engine_job_derivation(self):
        job = KMeansDataset.paper_dataset().engine_job(split_mb=64.0)
        assert job.num_map_tasks == pytest.approx(512, abs=2)

    def test_invalid_dataset_rejected(self):
        with pytest.raises(ValueError):
            KMeansDataset(num_points=0)


class TestKMeansMath:
    def test_assignment_finds_nearest(self):
        refs = np.array([[0.0, 0.0], [10.0, 10.0]])
        points = np.array([[0.1, 0.2], [9.5, 10.2], [0.4, 0.1]])
        assert list(assign_points(points, refs)) == [0, 1, 0]

    def test_centroid_recomputation(self):
        points = np.array([[0.0, 0.0], [2.0, 2.0], [10.0, 10.0]])
        assignments = np.array([0, 0, 1])
        centroids = recompute_centroids(points, assignments, k=2)
        assert centroids[0] == pytest.approx([1.0, 1.0])
        assert centroids[1] == pytest.approx([10.0, 10.0])

    def test_generated_points_deterministic(self):
        dataset = KMeansDataset.for_size_gb(1.0)
        a = generate_points(dataset, count=100, seed=3)
        b = generate_points(dataset, count=100, seed=3)
        assert np.array_equal(a, b)
        refs = generate_references(dataset, seed=3)
        assert refs.shape == (dataset.num_references, dataset.dimensions)

    def test_one_kmeans_iteration_reduces_inertia(self):
        dataset = KMeansDataset(num_points=1000, num_references=8)
        points = generate_points(dataset, count=1000, seed=1)
        refs = generate_references(dataset, seed=1)[:8]
        assignments = assign_points(points, refs)
        updated = recompute_centroids(points, assignments, k=8)

        def inertia(centroids):
            a = assign_points(points, centroids)
            return float(np.sum((points - centroids[a]) ** 2))

        assert inertia(updated) <= inertia(refs) + 1e-9


class TestTextWorkloads:
    def test_wordcount_jobs(self):
        wc = WordCountWorkload(input_gb=32.0)
        job = wc.planner_job()
        assert job.throughput_scale > 1.0  # faster per byte than k-means
        assert 0 < job.map_output_ratio < 0.1
        engine_job = wc.engine_job()
        assert engine_job.num_map_tasks == 512

    def test_wordcount_zipf_text(self):
        words = WordCountWorkload().sample_text(words=1000, seed=2)
        assert len(words) == 1000
        # Zipf: the most common token dominates.
        from collections import Counter

        top = Counter(words).most_common(1)[0][1]
        assert top > 100

    def test_sort_conserves_volume(self):
        sort = SortWorkload(input_gb=32.0)
        job = sort.planner_job()
        assert job.map_output_ratio == 1.0
        assert job.reduce_output_ratio == 1.0
        assert job.result_gb == pytest.approx(32.0)

    def test_sort_records_sortable(self):
        records = SortWorkload().sample_records(count=1000, seed=1)
        assert len(np.unique(records)) > 900


class TestInstanceBenchmark:
    def test_three_paper_instances(self):
        measurements = run_instance_benchmark()
        assert [m.instance for m in measurements] == [
            "ec2.m1.large",
            "ec2.m1.xlarge",
            "ec2.c1.xlarge",
        ]

    def test_projection_anchored_at_smallest(self):
        measurements = run_instance_benchmark()
        anchor = measurements[0]
        assert anchor.projected_gb_per_hour == pytest.approx(
            anchor.measured_gb_per_hour
        )

    def test_divergence_grows_with_ecu(self):
        measurements = run_instance_benchmark()
        divergences = [m.divergence for m in measurements]
        assert divergences == sorted(divergences)

    def test_no_rated_instances_rejected(self):
        with pytest.raises(ValueError):
            run_instance_benchmark(services=[])
