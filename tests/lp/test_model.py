"""Unit tests for the Model container and compilation."""

import math

import pytest

from repro.lp import Model, ObjectiveSense, Sense, SolveStatus, VarType
from repro.lp.expr import LinExpr


class TestConstruction:
    def test_duplicate_variable_names_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ValueError):
            m.add_var("x")

    def test_add_vars_names_and_count(self):
        m = Model()
        xs = m.add_vars("v", 5)
        assert len(xs) == 5
        assert xs[3].name == "v[3]"

    def test_foreign_variable_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_var("x")
        with pytest.raises(ValueError):
            m2.add_constr(x <= 1)

    def test_add_constr_requires_constraint(self):
        m = Model()
        with pytest.raises(TypeError):
            m.add_constr(True)  # type: ignore[arg-type]

    def test_num_integers_counts_all_discrete_kinds(self):
        m = Model()
        m.add_var("c")
        m.add_var("i", vtype=VarType.INTEGER)
        m.add_var("b", vtype=VarType.BINARY)
        m.add_var("s", ub=5, vtype=VarType.SEMI_CONTINUOUS, sc_lb=1)
        assert m.num_integers == 3

    def test_stats(self):
        m = Model()
        x, y = m.add_var("x"), m.add_var("y")
        m.add_constr(x + y <= 1)
        stats = m.stats()
        assert stats["variables"] == 2
        assert stats["constraints"] == 1
        assert stats["nonzeros"] == 2


class TestCompilation:
    def test_sense_rows(self):
        m = Model()
        x = m.add_var("x")
        m.add_constr(x <= 3)
        m.add_constr(x >= 1)
        m.add_constr(x == 2)
        compiled = m.compile()
        assert compiled.row_ub[0] == pytest.approx(3.0)
        assert compiled.row_lb[0] == -math.inf
        assert compiled.row_lb[1] == pytest.approx(1.0)
        assert compiled.row_lb[2] == compiled.row_ub[2] == pytest.approx(2.0)

    def test_maximize_negates(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.maximize(5 * x)
        compiled = m.compile()
        assert compiled.negated
        assert compiled.objective[x.index] == pytest.approx(-5.0)

    def test_semicontinuous_lowering_adds_binary_column(self):
        m = Model()
        z = m.add_var("z", ub=10, vtype=VarType.SEMI_CONTINUOUS, sc_lb=2)
        compiled = m.compile()
        assert compiled.num_vars == 2
        assert compiled.integrality[1] is True
        assert len(compiled.rows) == 2  # x <= Uz and x >= Lz

    def test_objective_offset(self):
        m = Model()
        x = m.add_var("x", ub=2)
        m.minimize(x + 7)
        solution = m.solve()
        assert solution.objective == pytest.approx(7.0)


class TestSolveBasics:
    def test_lp_optimum(self):
        m = Model()
        x = m.add_var("x", ub=4)
        y = m.add_var("y", ub=4)
        m.add_constr(x + 2 * y <= 6)
        m.maximize(3 * x + 2 * y)
        solution = m.solve()
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(14.0)
        assert solution.value(x) == pytest.approx(4.0)
        assert solution.value(y) == pytest.approx(1.0)

    def test_solution_value_of_expression(self):
        m = Model()
        x = m.add_var("x", lb=1, ub=1)
        solution = m.solve()
        assert solution.value(2 * x + 3) == pytest.approx(5.0)
        assert solution.value(4.2) == pytest.approx(4.2)

    def test_infeasible(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constr(x >= 2)
        assert m.solve().status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.add_var("x")
        m.maximize(x)
        status = m.solve().status
        assert status in (SolveStatus.UNBOUNDED, SolveStatus.ERROR)

    def test_integrality_enforced(self):
        m = Model()
        x = m.add_var("x", ub=10, vtype=VarType.INTEGER)
        m.add_constr(2 * x <= 7)
        m.maximize(x)
        solution = m.solve()
        assert solution.value(x) == pytest.approx(3.0)

    def test_semicontinuous_zero_or_range(self):
        # z must be 0 or in [4, 10]; constraint forces z <= 2.5 -> z = 0.
        m = Model()
        z = m.add_var("z", ub=10, vtype=VarType.SEMI_CONTINUOUS, sc_lb=4)
        m.add_constr(z <= 2.5)
        m.maximize(z)
        assert m.solve().value(z) == pytest.approx(0.0)

    def test_semicontinuous_reaches_range(self):
        m = Model()
        z = m.add_var("z", ub=10, vtype=VarType.SEMI_CONTINUOUS, sc_lb=4)
        m.add_constr(z <= 7)
        m.maximize(z)
        assert m.solve().value(z) == pytest.approx(7.0)

    def test_unknown_backend(self):
        m = Model()
        m.add_var("x", ub=1)
        with pytest.raises(ValueError):
            m.solve(backend="cplex")

    def test_solution_bool(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.minimize(x)
        assert m.solve()
        m2 = Model()
        y = m2.add_var("y", ub=1)
        m2.add_constr(y >= 2)
        assert not m2.solve()


class TestCheckFeasible:
    def test_reports_violations(self):
        m = Model()
        x = m.add_var("x", ub=4)
        m.add_constr(x <= 2, "cap")
        violated = m.check_feasible({x: 3.0})
        assert len(violated) == 1
        assert violated[0].name == "cap"

    def test_bounds_and_integrality_checked(self):
        m = Model()
        x = m.add_var("x", ub=1, vtype=VarType.INTEGER)
        assert m.check_feasible({x: 0.5})  # fractional
        assert m.check_feasible({x: 2.0})  # above ub
        assert not m.check_feasible({x: 1.0})

    def test_solution_always_passes_check(self):
        m = Model()
        x = m.add_var("x", ub=9, vtype=VarType.INTEGER)
        y = m.add_var("y", ub=9)
        m.add_constr(3 * x + y >= 7)
        m.add_constr(x + y <= 8)
        m.minimize(2 * x + y)
        solution = m.solve()
        assert solution.status is SolveStatus.OPTIMAL
        assert m.check_feasible(solution.values) == []
