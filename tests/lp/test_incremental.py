"""The diffing layer: classify model changes as patchable data deltas or
structural breaks, and warm-start the simplex from a retained basis."""

import copy

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.lp import Model, SolveStatus, VarType
from repro.lp.incremental import CompiledDelta, diff_compiled, structural_signature
from repro.lp import scipy_backend, simplex_backend


def small_lp(cost=(1.0, 2.0), rhs=10.0, ub=8.0):
    m = Model()
    x = m.add_var("x", ub=ub)
    y = m.add_var("y", ub=ub)
    m.add_constr(x + y >= rhs * 0.5)
    m.add_constr(2 * x + y <= rhs)
    m.minimize(cost[0] * x + cost[1] * y)
    return m


class TestDiffClassification:
    def test_identical_models_diff_empty(self):
        delta = diff_compiled(small_lp().compile(), small_lp().compile())
        assert isinstance(delta, CompiledDelta)
        assert delta.empty

    def test_cost_change_is_a_patch(self):
        delta = diff_compiled(
            small_lp().compile(), small_lp(cost=(3.0, 2.0)).compile()
        )
        assert delta is not None and not delta.empty
        assert delta.objective is not None
        assert not delta.var_bounds and not delta.row_bounds and not delta.matrix

    def test_rhs_change_is_a_patch(self):
        delta = diff_compiled(small_lp().compile(), small_lp(rhs=12.0).compile())
        assert delta is not None
        assert delta.row_bounds
        assert delta.objective is None

    def test_bound_change_is_a_patch(self):
        delta = diff_compiled(small_lp().compile(), small_lp(ub=6.0).compile())
        assert delta is not None
        assert delta.var_bounds

    def test_coefficient_change_on_same_sparsity_is_a_patch(self):
        def build(coef):
            m = Model()
            x = m.add_var("x", ub=4)
            y = m.add_var("y", ub=4)
            m.add_constr(coef * x + y <= 6)
            m.minimize(-x - y)
            return m.compile()

        delta = diff_compiled(build(2.0), build(2.5))
        assert delta is not None
        assert delta.matrix == [(0, 0, 2.5)]

    def test_new_constraint_is_structural(self):
        a = small_lp()
        b = small_lp()
        xs = b.variables
        b.add_constr(xs[0] - xs[1] <= 1)
        assert diff_compiled(a.compile(), b.compile()) is None

    def test_sparsity_change_is_structural(self):
        def build(with_y):
            m = Model()
            x = m.add_var("x", ub=4)
            y = m.add_var("y", ub=4)
            expr = x + y if with_y else x
            m.add_constr(expr <= 3)
            m.minimize(-x - 0.1 * y)
            return m.compile()

        assert diff_compiled(build(True), build(False)) is None

    def test_integrality_change_is_structural(self):
        def build(vtype):
            m = Model()
            x = m.add_var("x", ub=4, vtype=vtype)
            m.add_constr(x <= 3)
            m.minimize(-x)
            return m.compile()

        assert diff_compiled(
            build(VarType.CONTINUOUS), build(VarType.INTEGER)
        ) is None

    def test_renamed_column_is_structural(self):
        def build(name):
            m = Model()
            x = m.add_var(name, ub=4)
            m.add_constr(x <= 3)
            m.minimize(-x)
            return m.compile()

        assert diff_compiled(build("x"), build("z")) is None

    def test_bound_finiteness_flip_is_structural(self):
        def build(ub):
            m = Model()
            x = m.add_var("x", ub=ub)
            m.add_constr(x <= 3)
            m.minimize(-x)
            return m.compile()

        assert diff_compiled(build(4.0), build(float("inf"))) is None


class TestApply:
    @pytest.mark.parametrize(
        "mutate",
        [
            dict(cost=(5.0, 0.5)),
            dict(rhs=14.0),
            dict(ub=5.0),
            dict(cost=(0.2, 9.0), rhs=7.0, ub=7.5),
        ],
    )
    def test_patched_matrix_equals_fresh_compile(self, mutate):
        old = copy.deepcopy(small_lp().compile())
        new = small_lp(**mutate).compile()
        delta = diff_compiled(old, new)
        assert delta is not None
        delta.apply(old)
        assert old.objective == new.objective
        assert old.objective_offset == new.objective_offset
        assert old.rows == new.rows
        assert old.row_lb == new.row_lb and old.row_ub == new.row_ub
        assert old.var_lb == new.var_lb and old.var_ub == new.var_ub

    def test_signature_shared_iff_patchable(self):
        base = small_lp().compile()
        assert structural_signature(base) == structural_signature(
            small_lp(cost=(9.0, 1.0), rhs=20.0).compile()
        )
        extra = small_lp()
        xs = extra.variables
        extra.add_constr(xs[0] - xs[1] <= 1)
        assert structural_signature(base) != structural_signature(extra.compile())


class TestWarmSimplex:
    def test_solution_carries_a_basis(self):
        solution = simplex_backend.solve(small_lp().compile())
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.basis is not None and len(solution.basis) > 0

    def test_warm_restart_reproduces_the_optimum(self):
        compiled = small_lp().compile()
        cold = simplex_backend.solve(compiled)
        warm = simplex_backend.solve(compiled, start_basis=cold.basis)
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)

    def test_warm_start_on_patched_data_matches_cold(self):
        base = copy.deepcopy(small_lp().compile())
        seed = simplex_backend.solve(base)
        for mutate in (dict(cost=(4.0, 1.5)), dict(rhs=12.0), dict(ub=6.0)):
            target = small_lp(**mutate).compile()
            delta = diff_compiled(base, target)
            delta.apply(base)
            warm = simplex_backend.solve(base, start_basis=seed.basis)
            cold = simplex_backend.solve(target)
            assert warm.status is cold.status is SolveStatus.OPTIMAL
            assert warm.objective == pytest.approx(cold.objective, abs=1e-9)

    def test_stale_basis_repairs_through_phase_one(self):
        # Tighten the bounds until the seed basis is primal-infeasible:
        # the warm path must repair (or restart) and still find the optimum.
        seed = simplex_backend.solve(small_lp().compile())
        tight = small_lp(rhs=6.0, ub=2.5).compile()
        warm = simplex_backend.solve(tight, start_basis=seed.basis)
        cold = simplex_backend.solve(tight)
        assert warm.status is cold.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)

    def test_milp_accepts_a_root_basis(self):
        m = Model()
        xs = m.add_vars("x", 3, ub=3, vtype=VarType.INTEGER)
        m.add_constr(2 * xs[0] + 3 * xs[1] + xs[2] <= 7)
        m.maximize(3 * xs[0] + 4 * xs[1] + xs[2])
        compiled = m.compile()
        relaxed = copy.deepcopy(compiled)
        relaxed.integrality = [False] * len(relaxed.integrality)
        root = simplex_backend.solve(relaxed)
        warm = simplex_backend.solve(compiled, start_basis=root.basis)
        cold = simplex_backend.solve(compiled)
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)


def feasible(compiled, values_by_col, tol=1e-7):
    for col in range(compiled.num_vars):
        x = values_by_col.get(col, 0.0)
        if not compiled.var_lb[col] - tol <= x <= compiled.var_ub[col] + tol:
            return False
    for r, row in enumerate(compiled.rows):
        ax = sum(coef * values_by_col.get(col, 0.0) for col, coef in row.items())
        if not compiled.row_lb[r] - tol <= ax <= compiled.row_ub[r] + tol:
            return False
    return True


data = st.tuples(
    st.floats(min_value=0.1, max_value=5.0),   # cost x
    st.floats(min_value=0.1, max_value=5.0),   # cost y
    st.floats(min_value=4.0, max_value=20.0),  # rhs
    st.floats(min_value=3.0, max_value=10.0),  # ub
)


class TestWarmColdAgreementProperties:
    @settings(max_examples=40, deadline=None)
    @given(base=data, perturbed=data)
    def test_patched_warm_solve_agrees_with_cold_on_both_backends(
        self, base, perturbed
    ):
        # Keep both programs feasible: y = rhs/2 (x = 0) must fit in ub.
        assume(base[2] <= 2.0 * base[3])
        assume(perturbed[2] <= 2.0 * perturbed[3])
        old = copy.deepcopy(small_lp(cost=base[:2], rhs=base[2], ub=base[3]).compile())
        seed = simplex_backend.solve(old)
        assert seed.status is SolveStatus.OPTIMAL

        target_model = small_lp(
            cost=perturbed[:2], rhs=perturbed[2], ub=perturbed[3]
        )
        target = target_model.compile()
        delta = diff_compiled(old, target)
        assert delta is not None  # same family -> always a pure-data patch
        delta.apply(old)

        warm = simplex_backend.solve(old, start_basis=seed.basis)
        cold_simplex = simplex_backend.solve(target)
        cold_scipy = scipy_backend.solve(target, 30.0)

        assert warm.status is cold_simplex.status is cold_scipy.status
        if warm.status is SolveStatus.OPTIMAL:
            scale = max(1.0, abs(cold_simplex.objective))
            assert abs(warm.objective - cold_simplex.objective) <= 1e-9 * scale
            assert abs(warm.objective - cold_scipy.objective) <= 1e-7 * scale
            by_col = {
                col: warm.values[var]
                for col, var in enumerate(old.columns)
                if var is not None and var in warm.values
            }
            assert feasible(old, by_col)
