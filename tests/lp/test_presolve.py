"""Tests for the presolve reductions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import Model, VarType
from repro.lp.presolve import presolve


def build_and_presolve(build):
    model = Model("t")
    build(model)
    compiled = model.compile()
    return compiled, presolve(compiled)


class TestFixedColumns:
    def test_fixed_variable_removed_and_substituted(self):
        model = Model("t")
        x = model.add_var("x", lb=3.0, ub=3.0)
        y = model.add_var("y", ub=10.0)
        model.add_constr(x + y <= 8.0, "cap")
        model.minimize(x + 2 * y)
        result = presolve(model.compile())
        assert result.stats.fixed_columns == 1
        assert result.reduced.num_vars == 1
        # x=3 substituted: the row becomes the singleton y <= 5, which a
        # later pass converts into a bound; the objective gains offset 3.
        assert result.reduced.rows == []
        assert result.reduced.var_ub[0] == pytest.approx(5.0)
        assert result.reduced.objective_offset == pytest.approx(3.0)

    def test_fixed_integer_rounds(self):
        model = Model("t")
        model.add_var("n", lb=2.0000000001, ub=2.0000000001, vtype=VarType.INTEGER)
        model.minimize(0)
        result = presolve(model.compile())
        assert result.fixed_values[0] == pytest.approx(2.0)

    def test_restore_places_fixed_values(self):
        model = Model("t")
        model.add_var("x", lb=3.0, ub=3.0)
        model.add_var("y", ub=10.0)
        model.minimize(0)
        result = presolve(model.compile())
        full = result.restore([7.0])
        assert full == [3.0, 7.0]


class TestSingletonRows:
    def test_singleton_row_becomes_bound(self):
        model = Model("t")
        x = model.add_var("x", ub=100.0)
        model.add_constr(2 * x <= 10.0, "cap")
        model.minimize(-x)  # push against the bound
        result = presolve(model.compile())
        assert result.stats.singleton_rows == 1
        assert result.reduced.rows == []
        assert result.reduced.var_ub[0] == pytest.approx(5.0)

    def test_negative_coefficient_flips_bound(self):
        model = Model("t")
        x = model.add_var("x", ub=100.0)
        model.add_constr(-1.0 * x <= -4.0, "floor")  # x >= 4
        model.minimize(x)
        result = presolve(model.compile())
        assert result.reduced.var_lb[0] == pytest.approx(4.0)

    def test_contradictory_singletons_infeasible(self):
        model = Model("t")
        x = model.add_var("x", ub=100.0)
        model.add_constr(x <= 2.0, "hi")
        model.add_constr(x >= 5.0, "lo")
        model.minimize(x)
        result = presolve(model.compile())
        assert result.infeasible


class TestRedundantAndEmptyRows:
    def test_row_implied_by_bounds_dropped(self):
        model = Model("t")
        x = model.add_var("x", ub=2.0)
        y = model.add_var("y", ub=2.0)
        model.add_constr(x + y <= 100.0, "loose")
        model.minimize(x + y)
        result = presolve(model.compile())
        assert result.stats.redundant_rows >= 1
        assert result.reduced.rows == []

    def test_provably_violated_row_infeasible(self):
        model = Model("t")
        x = model.add_var("x", ub=1.0)
        y = model.add_var("y", ub=1.0)
        model.add_constr(x + y >= 5.0, "impossible")
        model.minimize(x)
        result = presolve(model.compile())
        assert result.infeasible

    def test_binding_row_kept(self):
        model = Model("t")
        x = model.add_var("x", ub=10.0)
        y = model.add_var("y", ub=10.0)
        model.add_constr(x + y <= 5.0, "binding")
        model.minimize(-x - y)
        result = presolve(model.compile())
        assert len(result.reduced.rows) == 1


class TestSolveEquivalence:
    def diet_model(self):
        model = Model("diet")
        x = model.add_var("x", ub=10.0)
        y = model.add_var("y", ub=10.0)
        z = model.add_var("z", lb=1.0, ub=1.0)  # fixed by bounds
        model.add_constr(2 * x + y + z >= 6.0, "protein")
        model.add_constr(x + 3 * y >= 9.0, "fiber")
        model.add_constr(x <= 8.0, "stock")  # singleton
        model.minimize(3 * x + 2 * y + 5 * z)
        return model

    def test_presolved_solution_matches_full_solve(self):
        model = self.diet_model()
        direct = model.solve(backend="scipy")
        compiled = model.compile()
        result = presolve(compiled)
        assert not result.infeasible
        from repro.lp import scipy_backend

        reduced_solution = scipy_backend.solve(result.reduced)
        assert reduced_solution.status.has_solution
        # Restore to full columns and evaluate the original objective.
        reduced_vector = [0.0] * result.reduced.num_vars
        for col, var in enumerate(result.reduced.columns):
            reduced_vector[col] = reduced_solution.values[var]
        full = result.restore(reduced_vector)
        value = sum(
            coef * full[col] for col, coef in compiled.objective.items()
        ) + compiled.objective_offset
        assert value == pytest.approx(direct.objective, rel=1e-6)

    @given(
        ub=st.floats(1.0, 20.0),
        rhs=st.floats(2.0, 30.0),
        fixed=st.floats(0.0, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_presolve_preserves_optimum(self, ub, rhs, fixed):
        model = Model("p")
        x = model.add_var("x", ub=ub)
        y = model.add_var("y", ub=ub)
        z = model.add_var("z", lb=fixed, ub=fixed)
        model.add_constr(x + y + z <= rhs, "cap")
        model.maximize(2 * x + y)
        direct = model.solve(backend="scipy")
        result = presolve(model.compile())
        if result.infeasible:
            assert not direct.status.has_solution
            return
        from repro.lp import scipy_backend

        reduced = scipy_backend.solve(result.reduced)
        assert reduced.status.has_solution == direct.status.has_solution
        if reduced.status.has_solution:
            # Reduced objective + offset equals the direct optimum
            # (both are minimizations of the negated objective).
            reduced_obj = reduced.objective
            assert reduced_obj == pytest.approx(direct.objective, rel=1e-6, abs=1e-6)

    def test_planner_model_shrinks(self):
        # A real planner model must lose a meaningful fraction of its
        # rows/columns to presolve (state pins many variables).
        from repro.cloud import public_cloud
        from repro.core import (
            Goal,
            NetworkConditions,
            PlannerJob,
            PlanningProblem,
            build_model,
        )

        problem = PlanningProblem(
            job=PlannerJob(input_gb=16.0),
            services=public_cloud(),
            network=NetworkConditions.from_mbit_s(16.0),
            goal=Goal.min_cost(deadline_hours=6.0),
        )
        compiled = build_model(problem).model.compile()
        result = presolve(compiled)
        assert not result.infeasible
        assert result.reduced.num_vars < compiled.num_vars
        assert len(result.reduced.rows) < len(compiled.rows)
