"""Cross-validation of the scipy/HiGHS backend against the pure-Python
simplex + branch & bound, plus property-based agreement tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import Model, SolveStatus, VarType
from repro.lp.simplex import LpStatus, solve_standard_form


def both_backends(model):
    return model.solve(backend="scipy"), model.solve(backend="simplex")


class TestAgreementHandPicked:
    def test_degenerate_lp(self):
        m = Model()
        x = m.add_var("x", ub=1)
        y = m.add_var("y", ub=1)
        m.add_constr(x + y <= 1)
        m.add_constr(x + y >= 1)
        m.maximize(x)
        a, b = both_backends(m)
        assert a.objective == pytest.approx(b.objective)

    def test_equality_constraints(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constr(x + y == 10)
        m.add_constr(x - y == 2)
        m.minimize(x + 2 * y)
        a, b = both_backends(m)
        assert a.value(x) == pytest.approx(6.0)
        assert b.value(x) == pytest.approx(6.0)

    def test_negative_lower_bounds(self):
        m = Model()
        x = m.add_var("x", lb=-5, ub=5)
        m.add_constr(x >= -3)
        m.minimize(x)
        a, b = both_backends(m)
        assert a.value(x) == pytest.approx(-3.0)
        assert b.value(x) == pytest.approx(-3.0)

    def test_knapsack_milp(self):
        weights = [2, 3, 4, 5, 9]
        values = [3, 4, 5, 8, 10]
        m = Model()
        xs = m.add_vars("x", len(weights), ub=1, vtype=VarType.INTEGER)
        m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 10)
        m.maximize(sum(v * x for v, x in zip(values, xs)))
        a, b = both_backends(m)
        # Optimum: items with weights 2+3+5 (values 3+4+8 = 15).
        assert a.objective == pytest.approx(15.0)
        assert b.objective == pytest.approx(15.0)

    def test_integer_infeasible(self):
        m = Model()
        x = m.add_var("x", vtype=VarType.INTEGER)
        m.add_constr(2 * x == 3)  # no integer solution
        a, b = both_backends(m)
        assert a.status is SolveStatus.INFEASIBLE
        assert b.status is SolveStatus.INFEASIBLE

    def test_mixed_integer_continuous(self):
        m = Model()
        n = m.add_var("n", ub=10, vtype=VarType.INTEGER)
        f = m.add_var("f", ub=3.5)
        m.add_constr(n + f >= 4.2)
        m.minimize(2 * n + f)
        a, b = both_backends(m)
        assert a.objective == pytest.approx(b.objective, abs=1e-6)


class TestSimplexStandardForm:
    def test_simple_equality(self):
        # min -x - y st x + y = 1, x,y >= 0 -> objective -1
        result = solve_standard_form(
            np.array([-1.0, -1.0]), np.array([[1.0, 1.0]]), np.array([1.0])
        )
        assert result.status is LpStatus.OPTIMAL
        assert result.objective == pytest.approx(-1.0)

    def test_infeasible_standard_form(self):
        # x1 = -1 with x >= 0 is infeasible (negative rhs flips, then
        # phase 1 cannot reach zero because -x1 = 1 has no solution).
        result = solve_standard_form(
            np.array([1.0]), np.array([[-1.0]]), np.array([1.0])
        )
        assert result.status is LpStatus.INFEASIBLE

    def test_unbounded(self):
        # min -x st x - s = 0 (s slack-ish unconstrained growth)
        result = solve_standard_form(
            np.array([-1.0, 0.0]), np.array([[1.0, -1.0]]), np.array([0.0])
        )
        assert result.status is LpStatus.UNBOUNDED

    def test_redundant_rows_handled(self):
        result = solve_standard_form(
            np.array([1.0, 1.0]),
            np.array([[1.0, 1.0], [2.0, 2.0]]),
            np.array([1.0, 2.0]),
        )
        assert result.status is LpStatus.OPTIMAL
        assert result.objective == pytest.approx(1.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            solve_standard_form(np.zeros(2), np.zeros((1, 3)), np.zeros(1))


@st.composite
def random_lp(draw):
    """A random bounded-feasible LP: bounded box + <= constraints with
    non-negative coefficients (always feasible at the origin)."""
    num_vars = draw(st.integers(1, 4))
    num_cons = draw(st.integers(0, 4))
    coefs = draw(
        st.lists(
            st.lists(st.integers(0, 5), min_size=num_vars, max_size=num_vars),
            min_size=num_cons,
            max_size=num_cons,
        )
    )
    rhs = draw(st.lists(st.integers(0, 20), min_size=num_cons, max_size=num_cons))
    objective = draw(
        st.lists(st.integers(-5, 5), min_size=num_vars, max_size=num_vars)
    )
    ubs = draw(st.lists(st.integers(1, 8), min_size=num_vars, max_size=num_vars))
    return coefs, rhs, objective, ubs


class TestAgreementProperty:
    @given(random_lp())
    @settings(max_examples=60, deadline=None)
    def test_backends_agree_on_random_lps(self, problem):
        coefs, rhs, objective, ubs = problem
        m = Model()
        xs = [m.add_var(f"x{i}", ub=ub) for i, ub in enumerate(ubs)]
        for row, b in zip(coefs, rhs):
            m.add_constr(sum(c * x for c, x in zip(row, xs)) <= b)
        m.maximize(sum(c * x for c, x in zip(objective, xs)))
        a = m.solve(backend="scipy")
        b = m.solve(backend="simplex")
        assert a.status is SolveStatus.OPTIMAL
        assert b.status is SolveStatus.OPTIMAL
        assert a.objective == pytest.approx(b.objective, abs=1e-6)

    @given(random_lp())
    @settings(max_examples=40, deadline=None)
    def test_solutions_satisfy_their_model(self, problem):
        coefs, rhs, objective, ubs = problem
        m = Model()
        xs = [m.add_var(f"x{i}", ub=ub, vtype=VarType.INTEGER) for i, ub in enumerate(ubs)]
        for row, b in zip(coefs, rhs):
            m.add_constr(sum(c * x for c, x in zip(row, xs)) <= b)
        m.maximize(sum(c * x for c, x in zip(objective, xs)))
        solution = m.solve()
        assert solution.status is SolveStatus.OPTIMAL
        assert m.check_feasible(solution.values) == []

    @given(random_lp())
    @settings(max_examples=30, deadline=None)
    def test_integer_optimum_never_beats_relaxation(self, problem):
        coefs, rhs, objective, ubs = problem
        relaxed = Model()
        integral = Model()
        xs_r = [relaxed.add_var(f"x{i}", ub=ub) for i, ub in enumerate(ubs)]
        xs_i = [
            integral.add_var(f"x{i}", ub=ub, vtype=VarType.INTEGER)
            for i, ub in enumerate(ubs)
        ]
        for row, b in zip(coefs, rhs):
            relaxed.add_constr(sum(c * x for c, x in zip(row, xs_r)) <= b)
            integral.add_constr(sum(c * x for c, x in zip(row, xs_i)) <= b)
        relaxed.maximize(sum(c * x for c, x in zip(objective, xs_r)))
        integral.maximize(sum(c * x for c, x in zip(objective, xs_i)))
        upper = relaxed.solve().objective
        achieved = integral.solve().objective
        assert achieved <= upper + 1e-6
