"""The compiled-matrix cache: reused while clean, dropped on mutation."""

import pytest

from repro.lp.model import Model


def toy_model() -> Model:
    m = Model("toy")
    x = m.add_var("x", ub=4)
    y = m.add_var("y", ub=4)
    m.add_constr(x + 2 * y <= 6, "cap")
    m.maximize(3 * x + 2 * y)
    return m


class TestCompileCache:
    def test_recompile_returns_same_object(self):
        m = toy_model()
        assert m.compile() is m.compile()

    def test_add_var_invalidates(self):
        m = toy_model()
        first = m.compile()
        m.add_var("z", ub=1)
        second = m.compile()
        assert second is not first
        assert second.num_vars == first.num_vars + 1

    def test_add_constr_invalidates(self):
        m = toy_model()
        x = m.variables[0]
        first = m.compile()
        m.add_constr(x <= 2, "tighter")
        second = m.compile()
        assert second is not first
        assert len(second.rows) == len(first.rows) + 1

    def test_objective_change_invalidates(self):
        m = toy_model()
        x = m.variables[0]
        first = m.compile()
        m.minimize(x)
        second = m.compile()
        assert second is not first
        assert second.negated != first.negated

    def test_resolve_after_mutation_sees_new_model(self):
        m = toy_model()
        x, y = m.variables
        assert m.solve().objective == pytest.approx(14.0)
        m.add_constr(x <= 1, "cap_x")
        assert m.solve().objective == pytest.approx(3 * 1 + 2 * 2.5)

    def test_repeated_solves_agree(self):
        m = toy_model()
        assert m.solve().objective == pytest.approx(m.solve().objective)
