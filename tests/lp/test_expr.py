"""Unit tests for the LP expression algebra."""

import math

import pytest

from repro.lp import LinExpr, Model, Sense, Variable, VarType, lin_sum
from repro.lp.expr import Constraint


@pytest.fixture
def model():
    return Model("expr-test")


@pytest.fixture
def xy(model):
    return model.add_var("x"), model.add_var("y")


class TestVariable:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Variable("bad", 0, lb=5.0, ub=1.0)

    def test_binary_clamps_bounds(self):
        v = Variable("b", 0, lb=-3, ub=7, vtype=VarType.BINARY)
        assert v.lb == 0.0
        assert v.ub == 1.0

    def test_semicontinuous_requires_finite_ub(self):
        with pytest.raises(ValueError):
            Variable("sc", 0, vtype=VarType.SEMI_CONTINUOUS)

    def test_semicontinuous_rejects_negative_sc_lb(self):
        with pytest.raises(ValueError):
            Variable("sc", 0, ub=5, vtype=VarType.SEMI_CONTINUOUS, sc_lb=-1)

    def test_repr_contains_name(self, xy):
        x, _ = xy
        assert "x" in repr(x)

    def test_hash_is_identity_based(self, model):
        a = model.add_var("a")
        b = model.add_var("b")
        assert hash(a) != hash(b) or a is b


class TestAlgebra:
    def test_addition_of_variables(self, xy):
        x, y = xy
        expr = x + y
        assert expr.coefficient(x) == 1.0
        assert expr.coefficient(y) == 1.0

    def test_scalar_multiplication(self, xy):
        x, _ = xy
        expr = 3 * x
        assert expr.coefficient(x) == 3.0

    def test_subtraction_and_negation(self, xy):
        x, y = xy
        expr = x - 2 * y
        assert expr.coefficient(y) == -2.0
        neg = -expr
        assert neg.coefficient(x) == -1.0
        assert neg.coefficient(y) == 2.0

    def test_rsub_constant(self, xy):
        x, _ = xy
        expr = 10 - x
        assert expr.constant == 10.0
        assert expr.coefficient(x) == -1.0

    def test_division(self, xy):
        x, _ = xy
        expr = (4 * x) / 2
        assert expr.coefficient(x) == 2.0

    def test_division_by_zero_raises(self, xy):
        x, _ = xy
        with pytest.raises(ZeroDivisionError):
            (x + 1) / 0

    def test_multiplication_by_expression_rejected(self, xy):
        x, y = xy
        with pytest.raises(TypeError):
            (x + 1) * (y + 1)

    def test_sum_builtin_compatibility(self, xy):
        x, y = xy
        expr = sum([x, y, 2 * x])
        assert expr.coefficient(x) == 3.0

    def test_constant_folding(self, xy):
        x, _ = xy
        expr = x + 1 + 2 + 3
        assert expr.constant == 6.0

    def test_terms_cancel_to_zero_coefficient(self, xy):
        x, _ = xy
        expr = x - x
        assert expr.coefficient(x) == 0.0
        assert expr.variables() == []

    def test_evaluate(self, xy):
        x, y = xy
        expr = 2 * x + 3 * y + 1
        assert expr.evaluate({x: 1.0, y: 2.0}) == pytest.approx(9.0)

    def test_copy_is_independent(self, xy):
        x, _ = xy
        original = x + 1
        clone = original.copy()
        clone.terms[x] = 99.0
        assert original.coefficient(x) == 1.0

    def test_from_value_rejects_garbage(self):
        with pytest.raises(TypeError):
            LinExpr.from_value("not a number")


class TestLinSum:
    def test_empty(self):
        expr = lin_sum([])
        assert expr.constant == 0.0
        assert not expr.terms

    def test_mixed_items(self, xy):
        x, y = xy
        expr = lin_sum([x, 2 * y, 5, x + y])
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == 3.0
        assert expr.constant == 5.0

    def test_equivalent_to_repeated_addition(self, model):
        xs = model.add_vars("v", 50)
        a = lin_sum(xs)
        b = LinExpr()
        for x in xs:
            b = b + x
        assert all(a.coefficient(x) == b.coefficient(x) for x in xs)


class TestConstraints:
    def test_le_builds_constraint(self, xy):
        x, y = xy
        constraint = x + y <= 5
        assert isinstance(constraint, Constraint)
        assert constraint.sense is Sense.LE
        assert constraint.rhs == pytest.approx(5.0)

    def test_ge_builds_constraint(self, xy):
        x, _ = xy
        constraint = x >= 2
        assert constraint.sense is Sense.GE
        assert constraint.rhs == pytest.approx(2.0)

    def test_eq_builds_constraint(self, xy):
        x, y = xy
        constraint = x + y == 3
        assert constraint.sense is Sense.EQ

    def test_variable_vs_variable(self, xy):
        x, y = xy
        constraint = x <= y
        assert constraint.expr.coefficient(x) == 1.0
        assert constraint.expr.coefficient(y) == -1.0

    def test_satisfied_by(self, xy):
        x, y = xy
        constraint = x + 2 * y <= 6
        assert constraint.satisfied_by({x: 2.0, y: 2.0})
        assert not constraint.satisfied_by({x: 3.0, y: 2.0})

    def test_eq_satisfied_within_tolerance(self, xy):
        x, _ = xy
        constraint = x == 1
        assert constraint.satisfied_by({x: 1.0 + 1e-9})
        assert not constraint.satisfied_by({x: 1.01})

    def test_rhs_moves_constant(self, xy):
        x, _ = xy
        constraint = x + 3 <= 10
        assert constraint.rhs == pytest.approx(7.0)
