"""Tests for the LP/MPS model writers."""

import pytest

from repro.lp import Model, VarType
from repro.lp.writers import save, write_lp, write_mps


def toy_model():
    model = Model("toy")
    x = model.add_var("x", ub=4.0)
    y = model.add_var("y", ub=4.0, vtype=VarType.INTEGER)
    b = model.add_var("b", vtype=VarType.BINARY)
    model.add_constr(x + 2 * y <= 6.0, "cap")
    model.add_constr(x - y >= -1.0, "gap")
    model.add_constr(x + b == 2.0, "link")
    model.maximize(3 * x + 2 * y + b)
    return model


class TestLpFormat:
    def test_sections_present(self):
        text = write_lp(toy_model())
        for section in ("Maximize", "Subject To", "Bounds", "Generals",
                        "Binaries", "End"):
            assert section in text

    def test_constraints_rendered_with_rhs(self):
        text = write_lp(toy_model())
        assert "cap: x + 2 y <= 6" in text
        assert "gap: x - y >= -1" in text
        assert "link: x + b = 2" in text

    def test_minimize_section(self):
        model = Model("m")
        x = model.add_var("x", ub=1.0)
        model.minimize(x)
        assert "Minimize" in write_lp(model)

    def test_default_bounds_omitted(self):
        model = Model("m")
        model.add_var("free_up", lb=0.0)  # the LP default
        model.add_var("capped", ub=9.0)
        model.minimize(0)
        text = write_lp(model)
        assert "free_up" not in text.split("Bounds")[1]
        assert "capped <= 9" in text.split("Bounds")[1]

    def test_semicontinuous_section(self):
        model = Model("m")
        model.add_var("s", ub=10.0, vtype=VarType.SEMI_CONTINUOUS, sc_lb=2.0)
        model.minimize(0)
        text = write_lp(model)
        assert "Semi-Continuous" in text
        assert "2 <= s <= 10" in text

    def test_bad_names_sanitized(self):
        model = Model("m")
        model.add_var("weird name!", ub=1.0)
        model.minimize(0)
        text = write_lp(model)
        assert "weird name!" not in text
        assert "weird_name_" in text

    def test_deterministic(self):
        assert write_lp(toy_model()) == write_lp(toy_model())

    def test_objective_constant_encoded(self):
        model = Model("m")
        x = model.add_var("x", ub=1.0)
        model.minimize(x + 5.0)
        text = write_lp(model)
        assert "__const" in text
        assert "__fix_const: __const = 1" in text


class TestMpsFormat:
    def test_sections_present(self):
        text = write_mps(toy_model())
        for section in ("NAME", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA"):
            assert section in text

    def test_objsense_for_maximization(self):
        assert "OBJSENSE" in write_mps(toy_model())
        model = Model("m")
        model.add_var("x", ub=1.0)
        model.minimize(0)
        assert "OBJSENSE" not in write_mps(model)

    def test_row_types(self):
        text = write_mps(toy_model())
        assert " L  cap" in text
        assert " G  gap" in text
        assert " E  link" in text

    def test_integer_markers_balanced(self):
        text = write_mps(toy_model())
        assert text.count("'INTORG'") == text.count("'INTEND'")
        assert text.count("'INTORG'") >= 1

    def test_binary_bound(self):
        text = write_mps(toy_model())
        assert " BV BND  b" in text

    def test_semicontinuous_bound(self):
        model = Model("m")
        model.add_var("s", ub=10.0, vtype=VarType.SEMI_CONTINUOUS, sc_lb=2.0)
        model.minimize(0)
        text = write_mps(model)
        assert " SC BND  s  10" in text
        assert " LO BND  s  2" in text

    def test_fixed_bound(self):
        model = Model("m")
        model.add_var("f", lb=3.0, ub=3.0)
        model.minimize(0)
        assert " FX BND  f  3" in write_mps(model)

    def test_deterministic(self):
        assert write_mps(toy_model()) == write_mps(toy_model())


class TestSave:
    def test_save_lp_and_mps(self, tmp_path):
        model = toy_model()
        lp_path = tmp_path / "model.lp"
        mps_path = tmp_path / "model.mps"
        save(model, str(lp_path))
        save(model, str(mps_path))
        assert lp_path.read_text().startswith("\\ Problem: toy")
        assert mps_path.read_text().startswith("NAME")

    def test_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="extension"):
            save(toy_model(), str(tmp_path / "model.txt"))

    def test_planner_model_exports(self, tmp_path):
        # The real Section-4 model must export without errors and carry
        # its semi-continuous phase barrier in the LP file.
        from repro.cloud import public_cloud
        from repro.core import (
            Goal,
            NetworkConditions,
            PlannerJob,
            PlanningProblem,
            build_model,
        )

        problem = PlanningProblem(
            job=PlannerJob(input_gb=8.0),
            services=public_cloud(),
            network=NetworkConditions.from_mbit_s(16.0),
            goal=Goal.min_cost(deadline_hours=6.0),
        )
        model = build_model(problem).model
        text = write_lp(model)
        assert "Subject To" in text
        save(model, str(tmp_path / "conductor.mps"))
