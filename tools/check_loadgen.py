#!/usr/bin/env python3
"""Frontend smoke gate: boot the socket frontend, storm it with the
loadgen, and enforce accountability and latency floors.

The script owns the whole lifecycle so CI needs one command:

1. start ``repro serve --listen 127.0.0.1:0`` as a subprocess and parse
   the bound address from its ``listening on HOST:PORT`` ready line;
2. drive it with ``tenants`` concurrent tenant connections (in-process
   :func:`repro.service.frontend.run_loadgen`, same code path as
   ``repro loadgen --connect``);
3. gate the run: every request answered (zero lost, zero connect
   failures), shed rate below ``--max-shed-rate`` and client-observed
   p99 below ``--max-p99-s``;
4. write the loadgen snapshot to ``--metrics-json`` for the CI artifact
   and SIGTERM the server.

Exit status 0 when every gate holds, 1 otherwise (one line per
problem).

Usage::

    python tools/check_loadgen.py --tenants 1000 --shards 4 \
        --metrics-json loadgen-metrics.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
READY = re.compile(r"listening on ([\d.]+):(\d+)")


def start_server(shards: int, max_pending_total: int) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src"), env.get("PYTHONPATH", "")]
    )
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--listen", "127.0.0.1:0", "--shards", str(shards),
         "--pool", "thread", "--workers", "2",
         "--max-pending-total", str(max_pending_total),
         "--max-pending-per-tenant", "64"],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = server.stderr.readline()
    match = READY.search(line)
    if not match:
        server.kill()
        raise RuntimeError(f"server never became ready: {line!r}")
    # Keep draining stderr — a full pipe would block the server's loop.
    threading.Thread(target=server.stderr.read, daemon=True).start()
    return server, f"{match.group(1)}:{match.group(2)}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=1000)
    parser.add_argument("--requests-per-tenant", type=int, default=1)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--distinct", type=int, default=6,
                        help="distinct problem specs (small = cache-heavy)")
    parser.add_argument("--max-shed-rate", type=float, default=0.05,
                        help="ceiling on rejected/sent (default: 5%%)")
    parser.add_argument("--max-p99-s", type=float, default=30.0,
                        help="ceiling on client-observed p99 latency")
    parser.add_argument("--metrics-json", type=Path, default=None,
                        help="write the loadgen snapshot here (CI artifact)")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(ROOT / "src"))
    from repro.service.frontend import generate_wire_workload, run_loadgen

    total = args.tenants * args.requests_per_tenant
    server, address = start_server(
        args.shards, max_pending_total=max(4096, 2 * total)
    )
    try:
        workload = generate_wire_workload(
            args.tenants, args.requests_per_tenant,
            seed=0, distinct=args.distinct,
        )
        report = asyncio.run(run_loadgen([address], workload))
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=60)
        except subprocess.TimeoutExpired:
            server.kill()

    print(report.describe())
    if args.metrics_json is not None:
        args.metrics_json.write_text(
            json.dumps(report.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"metrics written to {args.metrics_json}")

    p99 = report.percentile_s(99)
    problems: list[str] = []
    if report.sent != total:
        problems.append(f"sent {report.sent} != expected {total}")
    if report.connect_failures:
        problems.append(f"{report.connect_failures} connections never established")
    if report.lost:
        problems.append(f"{report.lost} requests got no response")
    if report.answered != report.sent:
        problems.append(f"answered {report.answered} != sent {report.sent}")
    if report.shed_rate > args.max_shed_rate:
        problems.append(
            f"shed rate {report.shed_rate:.2%} > {args.max_shed_rate:.2%}"
        )
    if p99 > args.max_p99_s:
        problems.append(f"p99 {p99:.2f}s > {args.max_p99_s:.2f}s")

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
