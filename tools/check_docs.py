#!/usr/bin/env python3
"""Docs consistency check: every internal link and referenced benchmark
script must exist.

Scanned files: ``README.md`` and everything under ``docs/``.  Two kinds
of references are verified:

1. Markdown links ``[text](target)`` whose target is a relative path
   (external ``scheme://`` URLs, ``mailto:`` and pure ``#anchor`` links
   are skipped) — the target must exist relative to the linking file;
2. Any mention of ``benchmarks/bench_*.py`` anywhere in the text (tables
   and prose included) — the script must exist in the repository.

Exit status 0 when everything resolves, 1 otherwise (one line per
problem) — cheap enough for a CI job that builds nothing.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — target captured up to a closing paren or anchor.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Any benchmark-script mention, linked or not.
BENCH = re.compile(r"benchmarks/bench_[A-Za-z0-9_]+\.py")


def doc_files() -> list[Path]:
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def is_external(target: str) -> bool:
    return "://" in target or target.startswith(("mailto:", "#"))


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(ROOT) if path.is_relative_to(ROOT) else path

    for match in LINK.finditer(text):
        target = match.group(1)
        if is_external(target):
            continue
        bare = target.split("#", 1)[0]
        if not bare:
            continue
        resolved = (path.parent / bare).resolve()
        if not resolved.exists():
            problems.append(f"{rel}: broken link -> {target}")

    for mention in sorted(set(BENCH.findall(text))):
        if not (ROOT / mention).exists():
            problems.append(f"{rel}: missing benchmark -> {mention}")

    return problems


def main() -> int:
    files = doc_files()
    problems = [p for f in files for p in check_file(f)]
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} doc problem(s) across {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"docs ok: {len(files)} file(s) checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
