#!/usr/bin/env python3
"""Perf-smoke gate: read a ``--bench-json`` report and enforce floors.

The benchmark conftest writes one JSON record per benchmark (wall
seconds plus any metrics the bench reported through ``bench_metrics``).
This script is the CI side of that contract: it fails when

1. any recorded benchmark did not pass, or
2. any ``warm_speedup`` metric falls below ``--min-warm-speedup``
   (default 3x) — the incremental re-solve hot path must stay
   meaningfully faster than cold solving, or
3. no ``warm_speedup`` metric exists at all (the gate silently
   checking nothing is itself a failure).

Usage::

    python tools/check_perf.py bench.json --min-warm-speedup 3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="JSON from --bench-json")
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=3.0,
        help="floor for every reported warm_speedup metric (default: 3)",
    )
    args = parser.parse_args(argv)

    payload = json.loads(args.report.read_text(encoding="utf-8"))
    problems: list[str] = []
    speedups: list[tuple[str, float]] = []

    for bench in payload.get("benchmarks", []):
        name = bench.get("name", "<unnamed>")
        outcome = bench.get("outcome")
        if outcome not in (None, "passed"):
            problems.append(f"{name}: outcome {outcome!r}")
        speedup = bench.get("metrics", {}).get("warm_speedup")
        if speedup is not None:
            speedups.append((name, float(speedup)))

    if not speedups:
        problems.append("no benchmark reported a warm_speedup metric")
    for name, speedup in speedups:
        status = "ok" if speedup >= args.min_warm_speedup else "TOO SLOW"
        print(f"{name}: warm_speedup {speedup:.2f}x "
              f"(floor {args.min_warm_speedup:.1f}x) {status}")
        if speedup < args.min_warm_speedup:
            problems.append(
                f"{name}: warm_speedup {speedup:.2f}x "
                f"< {args.min_warm_speedup:.1f}x"
            )

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
